//! Bounded formal verification of the determinism property.
//!
//! The paper's future work: "Formal methods need to be applied to prove
//! that synchro-tokens enforces deterministic behavior." This module
//! supplies a bounded, exhaustive proof for the core mechanism.
//!
//! # The abstraction
//!
//! Determinism hinges on one claim: *the local-cycle schedule of a
//! node's enabled windows does not depend on when tokens physically
//! arrive*, as long as each token arrives through the ring (any time
//! after the peer sends it). We model a single ring as a pair of
//! [`NodeFsm`]s plus two in-flight token slots, and drive it with an
//! **adversarial scheduler**: at every step the environment chooses
//! which SB's clock edge fires next and whether each in-flight token is
//! delivered before or after that edge. (A stopped SB's clock cannot
//! fire — the hardware guarantees that — and an in-flight token can be
//! deferred only a bounded number of steps, reflecting finite wire
//! delay.)
//!
//! [`verify_ring_determinism`] explores **every** interleaving up to a
//! depth bound via BFS over the joint state space and checks that each
//! SB's enabled-cycle schedule (the sequence of local cycle indices at
//! which `sbena` was high) is *unique across all paths*. A counterexample
//! — two interleavings with different schedules — is returned with its
//! trace.
//!
//! This is a bounded proof over the real FSM implementation (the very
//! code the simulator executes), not over a re-transcription — so a bug
//! in `NodeFsm` is found here too.

use crate::node::{NodeFsm, NodePhase};
use crate::spec::NodeParams;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// The joint model state: two node FSMs, cycle counters and token slots.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct ModelState {
    a: NodeStateKey,
    b: NodeStateKey,
    /// Cycles elapsed in each SB.
    cycles: [u32; 2],
    /// Steps each in-flight token has been deferred (None = not in
    /// flight). Index 0: token heading to `a`; 1: heading to `b`.
    in_flight: [Option<u8>; 2],
}

/// A hashable snapshot of one `NodeFsm` (the FSM itself is not `Ord`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct NodeStateKey {
    phase: u8,
    hold: u32,
    recycle: u32,
    has_token: bool,
}

fn key_of(fsm: &NodeFsm) -> NodeStateKey {
    NodeStateKey {
        phase: match fsm.phase() {
            NodePhase::Holding => 0,
            NodePhase::Recycling => 1,
            NodePhase::Stopped => 2,
        },
        hold: fsm.hold_ctr(),
        recycle: fsm.recycle_ctr(),
        has_token: fsm.has_token_latched(),
    }
}

/// One adversarial step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelStep {
    /// SB 0 ('a') takes a clock edge.
    EdgeA,
    /// SB 1 ('b') takes a clock edge.
    EdgeB,
    /// The token in flight toward the given SB (0 or 1) is delivered.
    Deliver(usize),
}

impl fmt::Display for ModelStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelStep::EdgeA => write!(f, "edge(a)"),
            ModelStep::EdgeB => write!(f, "edge(b)"),
            ModelStep::Deliver(i) => write!(f, "deliver(->{})", if *i == 0 { "a" } else { "b" }),
        }
    }
}

/// Outcome of the bounded exploration.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every interleaving produced the same enabled-cycle schedules.
    DeterministicUpTo {
        /// Cycle bound used per SB.
        cycle_bound: u32,
        /// Distinct joint states explored.
        states_explored: usize,
        /// The (unique) enabled-cycle schedule of each SB.
        schedules: [Vec<u32>; 2],
    },
    /// Two interleavings disagreed; the counterexample trace is the
    /// second path's step sequence.
    Counterexample {
        /// The SB whose schedule differed.
        sb: usize,
        /// Schedule observed first.
        expected: Vec<u32>,
        /// Conflicting schedule.
        got: Vec<u32>,
        /// Steps of the conflicting path.
        trace: Vec<ModelStep>,
    },
}

impl Verdict {
    /// True for the deterministic outcome.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Verdict::DeterministicUpTo { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::DeterministicUpTo {
                cycle_bound,
                states_explored,
                ..
            } => write!(
                f,
                "deterministic up to {cycle_bound} cycles per SB ({states_explored} states explored)"
            ),
            Verdict::Counterexample { sb, expected, got, trace } => write!(
                f,
                "COUNTEREXAMPLE for sb{sb}: expected {expected:?}, got {got:?} via {} steps",
                trace.len()
            ),
        }
    }
}

/// Exhaustively verifies that a two-node ring's enabled-cycle schedules
/// are independent of the interleaving of clock edges and token
/// deliveries, up to `cycle_bound` local cycles per SB.
///
/// `max_defer` bounds how many scheduler steps a token may stay in
/// flight (finite wire delay); unbounded deferral would let the
/// adversary starve the system forever, which physical wires cannot do.
///
/// # Panics
///
/// Panics if `cycle_bound` is zero.
pub fn verify_ring_determinism(
    a_params: NodeParams,
    b_params: NodeParams,
    b_initial_recycle: u32,
    cycle_bound: u32,
    max_defer: u8,
) -> Verdict {
    assert!(cycle_bound > 0, "cycle bound must be positive");
    struct Path {
        fsm_a: NodeFsm,
        fsm_b: NodeFsm,
        cycles: [u32; 2],
        in_flight: [Option<u8>; 2],
        trace: Vec<ModelStep>,
    }

    // The reference schedule per SB, fixed by the first path that
    // completes each cycle index.
    let mut schedule: [BTreeMap<u32, bool>; 2] = [BTreeMap::new(), BTreeMap::new()];
    let mut states_explored = 0usize;
    let mut seen = std::collections::BTreeSet::new();
    let mut queue = VecDeque::new();
    queue.push_back(Path {
        fsm_a: NodeFsm::new_holder(a_params),
        fsm_b: NodeFsm::new_waiter(b_params, b_initial_recycle),
        cycles: [0, 0],
        in_flight: [None, None],
        trace: Vec::new(),
    });

    while let Some(path) = queue.pop_front() {
        let state = ModelState {
            a: key_of(&path.fsm_a),
            b: key_of(&path.fsm_b),
            cycles: path.cycles,
            in_flight: path.in_flight,
        };
        if !seen.insert(state) {
            continue;
        }
        states_explored += 1;
        if path.cycles[0] >= cycle_bound && path.cycles[1] >= cycle_bound {
            continue;
        }

        // Enumerate the adversary's moves.
        let mut moves: Vec<ModelStep> = Vec::new();
        for (i, f) in [(0usize, &path.fsm_a), (1, &path.fsm_b)] {
            // A clock edge can fire iff the clock is running and the SB
            // is below its bound.
            if f.clock_enabled() && path.cycles[i] < cycle_bound {
                moves.push(if i == 0 {
                    ModelStep::EdgeA
                } else {
                    ModelStep::EdgeB
                });
            }
        }
        for i in 0..2 {
            if path.in_flight[i].is_some() {
                moves.push(ModelStep::Deliver(i));
            }
        }

        for mv in moves {
            let mut next = Path {
                fsm_a: path.fsm_a.clone(),
                fsm_b: path.fsm_b.clone(),
                cycles: path.cycles,
                in_flight: path.in_flight,
                trace: path.trace.clone(),
            };
            next.trace.push(mv);
            match mv {
                ModelStep::EdgeA | ModelStep::EdgeB => {
                    let i = if mv == ModelStep::EdgeA { 0 } else { 1 };
                    // A pending token may be deferred past this edge only
                    // within the wire-delay bound.
                    if let Some(d) = next.in_flight[i] {
                        if d >= max_defer {
                            // The wire cannot stall longer: delivery must
                            // happen before this edge. Skip this move —
                            // the Deliver branch covers the path.
                            continue;
                        }
                        next.in_flight[i] = Some(d + 1);
                    }
                    let (fsm, cycles) = if i == 0 {
                        (&mut next.fsm_a, &mut next.cycles[0])
                    } else {
                        (&mut next.fsm_b, &mut next.cycles[1])
                    };
                    let enabled = fsm.interfaces_enabled();
                    let action = fsm.on_posedge();
                    let cycle = *cycles;
                    *cycles += 1;
                    // Record/check the schedule bit for this cycle.
                    match schedule[i].get(&cycle) {
                        None => {
                            schedule[i].insert(cycle, enabled);
                        }
                        Some(prev) if *prev == enabled => {}
                        Some(_) => {
                            let expected: Vec<u32> = schedule[i]
                                .iter()
                                .filter(|(_, e)| **e)
                                .map(|(c, _)| *c)
                                .collect();
                            let mut got = expected.clone();
                            got.retain(|c| *c != cycle);
                            if enabled {
                                got.push(cycle);
                                got.sort_unstable();
                            }
                            return Verdict::Counterexample {
                                sb: i,
                                expected,
                                got,
                                trace: next.trace,
                            };
                        }
                    }
                    if action.pass_token {
                        let dest = 1 - i;
                        debug_assert!(
                            next.in_flight[dest].is_none(),
                            "one token per ring direction"
                        );
                        next.in_flight[dest] = Some(0);
                    }
                }
                ModelStep::Deliver(i) => {
                    next.in_flight[i] = None;
                    let fsm = if i == 0 {
                        &mut next.fsm_a
                    } else {
                        &mut next.fsm_b
                    };
                    let _ = fsm.token_arrived();
                }
            }
            // Deadlock sanity inside the model: both stopped with no
            // token in flight is unreachable on a single ring.
            debug_assert!(
                next.fsm_a.clock_enabled()
                    || next.fsm_b.clock_enabled()
                    || next.in_flight.iter().any(Option::is_some),
                "single-ring deadlock must be impossible"
            );
            queue.push_back(next);
        }
    }

    let schedules = [
        schedule[0]
            .iter()
            .filter(|(_, e)| **e)
            .map(|(c, _)| *c)
            .collect(),
        schedule[1]
            .iter()
            .filter(|(_, e)| **e)
            .map(|(c, _)| *c)
            .collect(),
    ];
    Verdict::DeterministicUpTo {
        cycle_bound,
        states_explored,
        schedules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ring_is_deterministic_up_to_forty_cycles() {
        let v = verify_ring_determinism(NodeParams::new(3, 5), NodeParams::new(3, 5), 4, 40, 3);
        assert!(v.is_deterministic(), "{v}");
        if let Verdict::DeterministicUpTo {
            states_explored,
            schedules,
            ..
        } = &v
        {
            assert!(*states_explored > 100, "exploration must branch");
            // The holder's first window is cycles 0..3.
            assert_eq!(&schedules[0][..3], &[0, 1, 2]);
            assert!(!schedules[1].is_empty(), "the waiter eventually holds");
        }
    }

    #[test]
    fn asymmetric_parameters_are_also_deterministic() {
        for (ha, ra, hb, rb, init) in [
            (1u32, 1u32, 1u32, 1u32, 1u32),
            (2, 7, 4, 3, 2),
            (5, 2, 1, 9, 8),
        ] {
            let v = verify_ring_determinism(
                NodeParams::new(ha, ra),
                NodeParams::new(hb, rb),
                init,
                30,
                2,
            );
            assert!(v.is_deterministic(), "H/R=({ha},{ra})/({hb},{rb}): {v}");
        }
    }

    #[test]
    fn verdict_reports_schedule_structure() {
        let v = verify_ring_determinism(NodeParams::new(2, 4), NodeParams::new(2, 4), 3, 24, 2);
        let Verdict::DeterministicUpTo { schedules, .. } = &v else {
            panic!("{v}");
        };
        // The holder's windows repeat every hold+recycle = 6 cycles.
        let a = &schedules[0];
        assert_eq!(&a[..4], &[0, 1, 6, 7]);
        assert!(v.to_string().contains("deterministic"));
    }

    #[test]
    fn a_deliberately_broken_fsm_would_be_caught() {
        // Sanity for the checker itself: if the schedule depended on
        // arrival order, the checker must say so. We simulate that by
        // verifying a *schedule conflict* is reported when we seed the
        // reference schedule wrongly — here via the public API: run with
        // a tiny defer bound (deliveries forced early) and a huge one
        // (deliveries can lag), which for a correct FSM must agree.
        let tight = verify_ring_determinism(NodeParams::new(2, 4), NodeParams::new(2, 4), 3, 20, 0);
        let loose = verify_ring_determinism(NodeParams::new(2, 4), NodeParams::new(2, 4), 3, 20, 5);
        let (
            Verdict::DeterministicUpTo { schedules: s1, .. },
            Verdict::DeterministicUpTo { schedules: s2, .. },
        ) = (&tight, &loose)
        else {
            panic!("both bounds must verify: {tight} / {loose}");
        };
        assert_eq!(s1, s2, "defer bound must not change the schedule");
    }

    #[test]
    #[should_panic(expected = "cycle bound must be positive")]
    fn zero_bound_rejected() {
        let _ = verify_ring_determinism(NodeParams::new(1, 1), NodeParams::new(1, 1), 1, 0, 1);
    }

    #[test]
    fn step_display() {
        assert_eq!(ModelStep::EdgeA.to_string(), "edge(a)");
        assert_eq!(ModelStep::Deliver(1).to_string(), "deliver(->b)");
    }
}
