//! Compiled fast-path backend: a whole GALS system lowered to a flat
//! typed-event engine.
//!
//! The paper's central observation is that under synchro-tokens every
//! SB's I/O sequence is a pure function of its local-cycle schedule —
//! and between token events that schedule is statically known. The
//! general event kernel still pays for that determinism the hard way:
//! every clock phase is a timer event that drives a `clk` signal, which
//! wakes a wrapper through a watcher list, which drives FIFO handshake
//! signals, which wake FIFO components, all with per-delta batch
//! bookkeeping and per-edge `Vec` allocation.
//!
//! [`CompiledSystem`] lowers a built system description once into flat
//! index-based arrays (`u32` channel/node/SB indices, SoA per-SB state,
//! reused per-edge scratch buffers) and replaces the generic
//! signal/watcher machinery with typed events: FIFO pushes/pops/stage
//! moves, token passes and clock enables in a single `(time, seq)`-
//! ordered heap, plus per-SB clock-phase and rising-edge slots the
//! dispatch loop scans beside the heap top. FIFO occupancy is a `u64`
//! bitmask per channel (one bit per stage, which gates depth to ≤ 64),
//! and on channels whose stage delay exceeds the bundled-data setup
//! delay the internal move cascade never touches the heap at all: moves
//! are queued in a per-channel buffer and drained lazily just before
//! any push, pop or rising edge reads that FIFO. One iteration of the
//! loop advances a whole clock phase segment instead of popping a chain
//! of per-delta kernel events.
//!
//! The engine is **observationally byte-identical** to the event-driven
//! [`System`]: `SbIoTrace` rows, cycle counts, edge times, clock and
//! FIFO statistics, node statistics and end times all match exactly
//! (enforced by the differential tests in `tests/compiled_equiv.rs`).
//! The monotone `seq` tiebreak reproduces the kernel's delta-batch
//! ordering: an event scheduled by a handler always fires after every
//! already-queued event at the same instant, exactly as a zero-delay
//! drive lands in the next delta batch.
//!
//! # Support envelope
//!
//! Lowering requires [`WrapperMode::SynchroTokens`], no node
//! observability signals, every SB half-period at least the bundled
//! data setup delay (1 ps), and every channel FIFO depth between 1 and
//! 64 (the occupancy bitmask is a `u64`). Outside that envelope (bypass
//! mode models metastability through the kernel RNG; sub-picosecond
//! clocks break the bundling constraint the compiled FIFO events rely
//! on),
//! [`SystemBuilder::build_backend`] silently falls back to the event
//! backend — callers never observe a behavioural difference, only a
//! speed difference.

use crate::checkpoint::{
    config_hash, encode_compiled_payload, Checkpoint, CheckpointBackend, CheckpointError,
    CompiledEvDump, CompiledFifoDump, CompiledSbDump, CompiledStateDump, DecodedCheckpoint,
};
use crate::faults::{
    DataAction, FaultInjector, JitterCounters, TokenPassAction, CLASS_CLK, CLASS_DATA, CLASS_TOKEN,
};
use crate::iotrace::{SbIoTrace, TraceRow};
use crate::logic::{IdleLogic, InputView, OutputSlot, SbIo, SyncLogic};
use crate::node::{NodeFsm, NodePhase, TokenAction};
use crate::spec::{ChannelId, RingId, SbId, SystemSpec};
use crate::system::{RunOutcome, System, SystemBuilder};
use crate::wrapper::{WrapperMode, BUNDLE_DELAY};
use st_sim::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which engine executes a built system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The general event kernel (signals, watchers, delta batches).
    #[default]
    Event,
    /// The flat typed-event engine, when the spec is in its support
    /// envelope; transparently the event kernel otherwise.
    Compiled,
}

/// Which engine *actually* executes a built [`AnySystem`] — unlike
/// [`Backend`], this distinguishes an explicitly requested event build
/// from a silent fallback out of the compiled envelope, so differential
/// tests can assert the fast path really was exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The event kernel, as explicitly requested.
    Event,
    /// The flat typed-event engine.
    Compiled,
    /// The event kernel, reached by falling back from a
    /// [`Backend::Compiled`] request outside the support envelope.
    EventFallback,
}

/// The compiled engine's fault-injection mirror: the same
/// [`JitterCounters`] draws the event backend's `DelayModel` makes (per
/// delivered drive, same `(class, unit, occurrence)` keys) and the same
/// [`FaultInjector`] occurrence matching, applied at the equivalent
/// scheduling sites.
pub(crate) struct ChaosState {
    jitter: Option<JitterCounters>,
    injector: Option<FaultInjector>,
}

impl ChaosState {
    /// Builds the mirror from a plan, or `None` when the plan carries
    /// nothing the run loop has to act on (SEU-only plans are applied
    /// from outside via `node_mut`).
    pub(crate) fn from_plan(
        p: crate::faults::FaultPlan,
        rings: usize,
        channels: usize,
    ) -> Option<Box<ChaosState>> {
        let jitter = p
            .analog
            .is_active()
            .then(|| JitterCounters::new(p.analog, p.seed));
        let injector =
            (!p.protocol.is_empty()).then(|| FaultInjector::new(p.protocol, rings, channels));
        (jitter.is_some() || injector.is_some()).then(|| Box::new(ChaosState { jitter, injector }))
    }

    #[inline]
    pub(crate) fn clk_jitter(&mut self, sb: u32) -> SimDuration {
        match self.jitter.as_mut() {
            Some(j) => j.next(CLASS_CLK, sb),
            None => SimDuration::ZERO,
        }
    }

    #[inline]
    pub(crate) fn token_jitter(&mut self, unit: u32) -> SimDuration {
        match self.jitter.as_mut() {
            Some(j) => j.next(CLASS_TOKEN, unit),
            None => SimDuration::ZERO,
        }
    }

    #[inline]
    pub(crate) fn data_jitter(&mut self, unit: u32) -> SimDuration {
        match self.jitter.as_mut() {
            Some(j) => j.next(CLASS_DATA, unit),
            None => SimDuration::ZERO,
        }
    }

    #[inline]
    pub(crate) fn on_push(&mut self, ch: ChannelId) -> DataAction {
        match self.injector.as_mut() {
            Some(i) => i.on_push(ch),
            None => DataAction::Deliver,
        }
    }

    #[inline]
    pub(crate) fn on_ack(&mut self, ch: ChannelId) -> DataAction {
        match self.injector.as_mut() {
            Some(i) => i.on_ack(ch),
            None => DataAction::Deliver,
        }
    }

    #[inline]
    pub(crate) fn on_token_pass(&mut self, ring: RingId, to_holder: bool) -> TokenPassAction {
        match self.injector.as_mut() {
            Some(i) => i.on_token_pass(ring, to_holder),
            None => TokenPassAction::Deliver,
        }
    }

    /// Occurrence-counter snapshots for checkpointing:
    /// `(jitter occurrence bytes, injector counters)` — each `None`
    /// when the corresponding layer is not active. Shared by the
    /// scalar and batched engines' checkpoint paths.
    pub(crate) fn snapshot_counters(&self) -> SnapshotCounters {
        (
            self.jitter.as_ref().map(JitterCounters::snapshot_occ),
            self.injector.as_ref().map(FaultInjector::snapshot_counters),
        )
    }
}

/// `(jitter occurrence bytes, injector counters)` as captured by
/// [`ChaosState::snapshot_counters`].
pub(crate) type SnapshotCounters = (Option<Vec<u8>>, Option<(Vec<u64>, Vec<u64>, Vec<u64>)>);

/// A typed event. `u32` indices keep the heap payload at two words
/// beside the timestamp. Clock phase boundaries and rising edges do
/// not appear here: each SB has at most one of each pending, so they
/// live in per-SB slots (`SbState::phase_at` / `posedge_at`) that the
/// dispatch loop scans beside the heap top — same `(time, seq)` keys,
/// same order, no heap traffic for the per-cycle clock machinery.
#[derive(Debug, Clone, Copy)]
enum EvKind {
    /// A bundled-data word arrives at channel `ch`'s tail.
    Push { ch: u32, word: u64 },
    /// The consumer's acknowledge arrives at channel `ch`'s head.
    Pop { ch: u32 },
    /// The word in `stage` of channel `ch` attempts to advance.
    Move { ch: u32, stage: u32 },
    /// A token toggle arrives at node `node` of SB `sb`.
    Token { sb: u32, node: u32 },
    /// SB `sb`'s clock enable takes value `ena` (the AND over its nodes,
    /// captured at schedule time like a driven signal value).
    Clken { sb: u32, ena: bool },
}

/// Heap entry ordered by `(time, seq)`; `seq` is globally monotone, so
/// ordering ignores the payload (seqs are unique).
#[derive(Debug, Clone, Copy)]
struct Ev {
    time: SimTime,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One token-ring node, with its pass destination pre-resolved to flat
/// indices.
#[derive(Debug)]
struct CompiledNode {
    ring: RingId,
    fsm: NodeFsm,
    /// SB index the pass toggle lands in.
    dest_sb: u32,
    /// Node index within the destination SB.
    dest_node: u32,
    /// Node output delay + ring wire delay to the peer.
    pass_delay: SimDuration,
    /// True when outgoing passes travel toward the ring's initial
    /// holder (i.e. this node sits on the peer side) — the token
    /// fault-injection direction bit.
    to_holder: bool,
}

/// Flattened per-SB state: clock, wrapper and scratch in one place.
struct SbState {
    half: SimDuration,
    restart_delay: SimDuration,
    logic_delay: SimDuration,
    logic: Box<dyn SyncLogic>,
    nodes: Vec<CompiledNode>,
    /// Input channels in channel-id order: (channel index, node index).
    inputs: Vec<(u32, u32)>,
    /// Output channels in channel-id order: (channel index, node index).
    outputs: Vec<(u32, u32)>,
    // Clock state (mirrors StoppableClock).
    clk_high: bool,
    parked: bool,
    clken: bool,
    edges: u64,
    clock_stops: u64,
    // Wrapper state (mirrors SbWrapper).
    cycle: u64,
    trace: SbIoTrace,
    dropped_words: u64,
    timing_violations: u64,
    last_edge: Option<SimTime>,
    edge_times: Vec<SimTime>,
    edge_times_cap: usize,
    // Per-edge scratch, reused so the steady state allocates nothing.
    views: Vec<InputView>,
    slots: Vec<OutputSlot>,
    pops: Vec<bool>,
}

/// Flattened self-timed FIFO state (mirrors `SelfTimedFifo`, minus the
/// published signals — the engine reads `stages` directly, which under
/// the support envelope is always what the published signals would say
/// at the instant a wrapper samples them).
#[derive(Debug)]
struct FifoState {
    /// Stage occupancy, bit `s` set when stage `s` holds a word.
    /// Bit 0 is the tail; bit `depth - 1` is the head. Lowering
    /// requires `depth <= 64` so the whole ladder fits one word.
    occ: u64,
    /// The word in each stage (meaningful only where `occ` is set).
    words: Vec<u64>,
    depth: u32,
    stage_delay: SimDuration,
    /// Whether the stage-advance cascade runs through the private
    /// `pending` queue instead of global `Move` events. Exact when
    /// `stage_delay > BUNDLE_DELAY`: a move firing at `t` was then
    /// scheduled (seq-allocated) strictly before any same-instant
    /// push/pop (allocated `BUNDLE_DELAY` before `t`) or rising edge
    /// (allocated at `t`), so every reader of the stages observes all
    /// moves with fire time `<= t` already applied — which is exactly
    /// what draining before the reader does. Within one channel the
    /// cascade's relative order is its allocation order, preserved by
    /// stable insertion.
    virtualized: bool,
    /// Pending stage-advance attempts `(fire time, stage)`, sorted by
    /// time with stable (allocation) order among equal times.
    pending: Vec<(SimTime, u32)>,
    pushes: u64,
    pops: u64,
    overruns: u64,
    underruns: u64,
}

impl FifoState {
    /// Queues a stage-advance attempt on a virtualized channel.
    #[inline]
    fn queue_move(&mut self, at: SimTime, stage: u32) {
        // Stable insert: after every entry with time <= at (equal-time
        // entries were allocated earlier, so they stay in front). The
        // cascade almost always appends in time order, so check the
        // back before binary-searching.
        if self.pending.last().is_none_or(|&(t, _)| t <= at) {
            self.pending.push((at, stage));
        } else {
            let pos = self.pending.partition_point(|&(t, _)| t <= at);
            self.pending.insert(pos, (at, stage));
        }
    }

    /// Applies every pending stage advance with fire time `<= upto`,
    /// in fire order, counting each application like a dispatched
    /// event (the totals must match the non-virtualized engine).
    fn drain(&mut self, upto: SimTime, events: &mut u64) {
        // Cursor walk: applied entries are cleared in one splice at the
        // end. Follow-ups queued during the walk land at `at + F`, i.e.
        // never before the cursor, so indexing stays stable.
        let mut i = 0;
        while let Some(&(at, stage)) = self.pending.get(i) {
            if at > upto {
                break;
            }
            i += 1;
            self.apply_move(at, stage as usize);
        }
        if i > 0 {
            *events += i as u64;
            self.pending.drain(..i);
        }
    }

    /// One stage-advance attempt on a virtualized channel (the private
    /// twin of `CompiledSystem::on_move`, follow-ups queued privately).
    fn apply_move(&mut self, now: SimTime, stage: usize) {
        let bit = 1u64 << stage;
        if self.occ & bit == 0 {
            return; // Stale movement.
        }
        if self.occ & (bit << 1) != 0 {
            return; // Blocked; a later pop/advance requeues.
        }
        self.occ ^= bit | (bit << 1);
        self.words[stage + 1] = self.words[stage];
        if stage as u32 + 2 < self.depth {
            self.queue_move(now + self.stage_delay, (stage + 1) as u32);
        }
        if stage > 0 && self.occ & (bit >> 1) != 0 {
            self.queue_move(now + self.stage_delay, (stage - 1) as u32);
        }
    }
}

/// A pending clock event as a packed `(time << 64) | seq` sort key;
/// `u128::MAX` marks an empty slot. One compare orders two keys the
/// same way `(time, seq)` tuples would, and the per-SB array is dense
/// enough that the dispatch loop's scan stays in one or two cache
/// lines for paper-scale systems.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClockSlots {
    /// The next phase boundary (rising or falling check).
    pub(crate) phase: u128,
    /// The pending rising-edge delivery to the wrapper.
    pub(crate) posedge: u128,
}

pub(crate) const SLOT_EMPTY: u128 = u128::MAX;

#[inline]
pub(crate) fn slot_key(time: SimTime, seq: u64) -> u128 {
    (u128::from(time.as_fs()) << 64) | u128::from(seq)
}

#[inline]
pub(crate) fn slot_time(key: u128) -> SimTime {
    SimTime::from_fs((key >> 64) as u64)
}

/// A system lowered to the flat typed-event engine.
///
/// Build one through [`SystemBuilder::build_backend`] with
/// [`Backend::Compiled`]; the accessor surface mirrors [`System`].
pub struct CompiledSystem {
    spec: SystemSpec,
    spec_hash: [u8; 16],
    sbs: Vec<SbState>,
    fifos: Vec<FifoState>,
    /// Pending clock events, one pair of slots per SB (indexed like
    /// `sbs`). At most one phase boundary and one rising edge exist
    /// per SB at any time, so they never need the heap; seqs still
    /// come from the same global counter at the same points, keeping
    /// dispatch order identical to a single-queue engine.
    clk: Vec<ClockSlots>,
    heap: BinaryHeap<Reverse<Ev>>,
    now: SimTime,
    seq: u64,
    events: u64,
    /// Fault-injection mirror, present only when a plan is attached.
    chaos: Option<Box<ChaosState>>,
}

impl std::fmt::Debug for CompiledSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSystem")
            .field("sbs", &self.sbs.len())
            .field("now", &self.now)
            .field("pending_events", &self.heap.len())
            .finish()
    }
}

#[inline]
fn sched(heap: &mut BinaryHeap<Reverse<Ev>>, seq: &mut u64, time: SimTime, kind: EvKind) {
    let s = *seq;
    *seq += 1;
    heap.push(Reverse(Ev { time, seq: s, kind }));
}

impl CompiledSystem {
    /// Whether `builder`'s system can be lowered.
    pub(crate) fn supports(builder: &SystemBuilder) -> bool {
        builder.mode == WrapperMode::SynchroTokens
            && !builder.observe_nodes
            && builder
                .spec
                .sbs
                .iter()
                .all(|s| !s.period.is_zero() && s.period / 2 >= BUNDLE_DELAY)
            && builder
                .spec
                .channels
                .iter()
                .all(|c| (1..=64).contains(&c.fifo_depth))
    }

    /// Lowers the builder, or hands it back untouched when the system
    /// is outside the support envelope. Runs once per build, so the
    /// by-value `Err` hand-back costs nothing measurable.
    #[allow(clippy::result_large_err)]
    fn lower(mut builder: SystemBuilder) -> Result<CompiledSystem, SystemBuilder> {
        if !Self::supports(&builder) {
            return Err(builder);
        }
        let spec = builder.spec.clone();
        // Before `faults` is consumed below: the hash covers the plan.
        let spec_hash = config_hash(
            &spec,
            builder.seed,
            builder.trace_limit,
            builder.faults.as_ref(),
        );
        let trace_limit = builder.trace_limit;
        let chaos = builder
            .faults
            .take()
            .and_then(|p| ChaosState::from_plan(p, spec.rings.len(), spec.channels.len()));

        let fifos: Vec<FifoState> = spec
            .channels
            .iter()
            .map(|ch| FifoState {
                occ: 0,
                words: vec![0; ch.fifo_depth],
                depth: ch.fifo_depth as u32,
                stage_delay: ch.stage_delay,
                virtualized: ch.stage_delay > BUNDLE_DELAY,
                pending: Vec::new(),
                pushes: 0,
                pops: 0,
                overruns: 0,
                underruns: 0,
            })
            .collect();

        // First pass: per-SB node lists in the same order the event
        // builder creates them (rings_of order), so node indices match.
        let mut node_rings: Vec<Vec<RingId>> = Vec::with_capacity(spec.sbs.len());
        for i in 0..spec.sbs.len() {
            node_rings.push(spec.rings_of(SbId(i)).map(|(rid, _)| rid).collect());
        }
        let node_index = |sb: usize, ring: RingId| -> u32 {
            node_rings[sb]
                .iter()
                .position(|r| *r == ring)
                .expect("peer SB must have a node on the shared ring") as u32
        };

        let mut sbs = Vec::with_capacity(spec.sbs.len());
        for (i, sb_spec) in spec.sbs.iter().enumerate() {
            let sb = SbId(i);
            let half = sb_spec.period / 2;
            let mut nodes = Vec::new();
            for (ring_id, ring) in spec.rings_of(sb) {
                let holder_side = ring.holder == sb;
                let fsm = if holder_side {
                    NodeFsm::new_holder(ring.holder_node)
                } else {
                    let initial = ring.peer_initial_recycle.unwrap_or(ring.peer_node.recycle);
                    NodeFsm::new_waiter(ring.peer_node, initial)
                };
                let (dest, pass_delay) = if holder_side {
                    (ring.peer, ring.delay_fwd)
                } else {
                    (ring.holder, ring.delay_back)
                };
                nodes.push(CompiledNode {
                    ring: ring_id,
                    fsm,
                    dest_sb: dest.0 as u32,
                    dest_node: node_index(dest.0, ring_id),
                    pass_delay,
                    to_holder: !holder_side,
                });
            }
            let inputs: Vec<(u32, u32)> = spec
                .inputs_of(sb)
                .map(|(cid, ch)| (cid.0 as u32, node_index(i, ch.ring)))
                .collect();
            let outputs: Vec<(u32, u32)> = spec
                .outputs_of(sb)
                .map(|(cid, ch)| (cid.0 as u32, node_index(i, ch.ring)))
                .collect();
            let logic = builder
                .logics
                .remove(&i)
                .unwrap_or_else(|| Box::new(IdleLogic));
            let n_inputs = inputs.len();
            let n_outputs = outputs.len();
            sbs.push(SbState {
                half,
                restart_delay: half / 10,
                logic_delay: sb_spec.logic_delay,
                logic,
                nodes,
                inputs,
                outputs,
                clk_high: false,
                parked: false,
                // The wrapper drives clken high from Start; nodes never
                // begin in `Stopped`, so the enable starts asserted.
                clken: true,
                edges: 0,
                clock_stops: 0,
                cycle: 0,
                trace: SbIoTrace::with_limit(trace_limit),
                dropped_words: 0,
                timing_violations: 0,
                last_edge: None,
                edge_times: Vec::new(),
                edge_times_cap: if trace_limit == 0 {
                    1 << 20
                } else {
                    trace_limit
                },
                views: Vec::with_capacity(n_inputs),
                slots: Vec::with_capacity(n_outputs),
                pops: vec![false; n_inputs],
            });
        }

        let n_sbs = sbs.len();
        let mut sys = CompiledSystem {
            spec,
            spec_hash,
            sbs,
            fifos,
            clk: vec![
                ClockSlots {
                    phase: SLOT_EMPTY,
                    posedge: SLOT_EMPTY,
                };
                n_sbs
            ],
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            events: 0,
            chaos,
        };
        // First phase boundary of every clock, in SB (registration)
        // order — the same relative order the kernel's start timers get.
        for i in 0..n_sbs {
            sys.clk[i].phase = slot_key(SimTime::ZERO + sys.sbs[i].half, sys.seq);
            sys.seq += 1;
        }
        Ok(sys)
    }

    /// Runs until simulated time would exceed `deadline` or the heap
    /// drains. Mirrors `Simulator::run_until`, including processing
    /// events exactly at the deadline and advancing `now` to the
    /// deadline on quiescence.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` matches the event backend's signature.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<RunSummary, SimError> {
        let fired_before = self.events;
        let mut quiescent = false;
        let deadline_fs = deadline.as_fs();
        // Dispatch sources: clock slots are scanned linearly (two
        // packed keys per SB), everything else comes off the heap.
        // Seqs are globally unique, so the packed-key minimum is
        // unique and the pop order is identical to a single-queue
        // engine.
        loop {
            let mut best = SLOT_EMPTY;
            let mut src_sb = usize::MAX; // usize::MAX = heap (or none)
            let mut is_posedge = false;
            for (i, c) in self.clk.iter().enumerate() {
                if c.phase < best {
                    best = c.phase;
                    src_sb = i;
                    is_posedge = false;
                }
                if c.posedge < best {
                    best = c.posedge;
                    src_sb = i;
                    is_posedge = true;
                }
            }
            let heap_first = match self.heap.peek() {
                Some(&Reverse(ev)) => {
                    let k = slot_key(ev.time, ev.seq);
                    if k < best {
                        best = k;
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            if best == SLOT_EMPTY {
                quiescent = true;
                break;
            }
            if (best >> 64) as u64 > deadline_fs {
                break;
            }
            self.now = slot_time(best);
            self.events += 1;
            if heap_first {
                let Some(Reverse(ev)) = self.heap.pop() else {
                    unreachable!("heap top vanished");
                };
                match ev.kind {
                    EvKind::Push { ch, word } => self.on_push(ch as usize, word),
                    EvKind::Pop { ch } => self.on_pop(ch as usize),
                    EvKind::Move { ch, stage } => self.on_move(ch as usize, stage as usize),
                    EvKind::Token { sb, node } => self.on_token(sb as usize, node as usize),
                    EvKind::Clken { sb, ena } => self.on_clken(sb as usize, ena),
                }
            } else if is_posedge {
                self.clk[src_sb].posedge = SLOT_EMPTY;
                self.on_posedge(src_sb);
            } else {
                self.clk[src_sb].phase = SLOT_EMPTY;
                self.on_phase(src_sb);
            }
        }
        // Settle virtualized FIFO cascades: every move that would have
        // fired by the deadline is applied (and counted) now, so the
        // externally observable state and event totals match the
        // all-real-events engine at every chunk boundary. Moves only
        // schedule moves, so draining cannot wake anything global —
        // but moves still pending *beyond* the deadline would have
        // kept the reference engine's heap non-empty, so they veto
        // quiescence.
        for f in &mut self.fifos {
            if !f.pending.is_empty() {
                f.drain(deadline, &mut self.events);
                if !f.pending.is_empty() {
                    quiescent = false;
                }
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        let fired = self.events - fired_before;
        Ok(RunSummary {
            events_fired: fired,
            wakes: fired,
            end_time: self.now,
            quiescent,
        })
    }

    /// Runs for a further `span` of simulated time.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` matches the event backend's signature.
    pub fn run_for(&mut self, span: SimDuration) -> Result<RunSummary, SimError> {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Runs until every SB has executed at least `cycles` local cycles,
    /// deadlock is detected, or `max_time` of simulated time elapses.
    /// A verbatim port of [`System::run_until_cycles`]'s chunk loop, so
    /// intermediate end times match exactly.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` matches the event backend's signature.
    pub fn run_until_cycles(
        &mut self,
        cycles: u64,
        max_time: SimDuration,
    ) -> Result<RunOutcome, SimError> {
        let deadline = self.now + max_time;
        let chunk = self
            .spec
            .sbs
            .iter()
            .map(|s| s.period)
            .max()
            .unwrap_or(SimDuration::ns(10))
            * (cycles.max(16));
        loop {
            if self.min_cycles() >= cycles {
                return Ok(RunOutcome::Reached);
            }
            if self.now >= deadline {
                return Ok(RunOutcome::TimedOut);
            }
            let next = (self.now + chunk).min(deadline);
            let summary = self.run_until(next)?;
            if self.min_cycles() >= cycles {
                return Ok(RunOutcome::Reached);
            }
            if summary.quiescent {
                return Ok(RunOutcome::Deadlock {
                    stopped: self.stopped_sbs(),
                });
            }
        }
    }

    // --- event handlers -------------------------------------------------

    /// Clock phase boundary (mirrors `StoppableClock`'s phase timer).
    fn on_phase(&mut self, sbi: usize) {
        let now = self.now;
        let Self {
            sbs,
            clk,
            seq,
            chaos,
            ..
        } = self;
        let sb = &mut sbs[sbi];
        if sb.parked {
            // Stale phase while parked cannot happen (parking consumes
            // the only outstanding phase event), but mirror the clock's
            // defensive guard.
            return;
        }
        if sb.clk_high {
            // Falling edges always complete.
            sb.clk_high = false;
            clk[sbi].phase = slot_key(now + sb.half, *seq);
            *seq += 1;
        } else if sb.clken {
            sb.clk_high = true;
            sb.edges += 1;
            // Analog faults jitter the rising drive only; the phase
            // timer (and so the falling edge) stays on the oscillator's
            // nominal grid, mirroring the event backend's `DelayModel`
            // perturbing the `clk <- One` drive and nothing else.
            let j = match chaos.as_deref_mut() {
                Some(c) => c.clk_jitter(sbi as u32),
                None => SimDuration::ZERO,
            };
            // The rising edge reaches the wrapper "one delta later":
            // the fresh seq puts it after every event already queued at
            // this instant, exactly like the kernel's zero-delay drive.
            clk[sbi].posedge = slot_key(now + j, *seq);
            *seq += 1;
            clk[sbi].phase = slot_key(now + sb.half, *seq);
            *seq += 1;
        } else {
            // Synchronous stop: park with the clock low.
            sb.parked = true;
            sb.clock_stops += 1;
        }
    }

    /// Clock-enable change (mirrors the `clken` signal: unchanged
    /// values are suppressed, a rise while parked restarts the clock).
    fn on_clken(&mut self, sbi: usize, ena: bool) {
        let now = self.now;
        let Self {
            sbs,
            clk,
            seq,
            chaos,
            ..
        } = self;
        let sb = &mut sbs[sbi];
        if ena == sb.clken {
            return;
        }
        sb.clken = ena;
        if sb.parked && ena {
            // Asynchronous restart: full high phase, no runt pulse.
            // The restart rise is a jittered drive like any other; the
            // phase boundary stays nominal.
            sb.parked = false;
            sb.clk_high = true;
            sb.edges += 1;
            let j = match chaos.as_deref_mut() {
                Some(c) => c.clk_jitter(sbi as u32),
                None => SimDuration::ZERO,
            };
            clk[sbi].posedge = slot_key(now + sb.restart_delay + j, *seq);
            *seq += 1;
            clk[sbi].phase = slot_key(now + sb.restart_delay + sb.half, *seq);
            *seq += 1;
        }
    }

    /// Token toggle arrival (mirrors `SbWrapper::handle_token`; toggles
    /// always change value, so there is no suppression to replicate).
    fn on_token(&mut self, sbi: usize, node: usize) {
        let now = self.now;
        let Self { sbs, heap, seq, .. } = self;
        let sb = &mut sbs[sbi];
        if sb.nodes[node].fsm.token_arrived() == TokenAction::RestartClock {
            let ena = sb.nodes.iter().all(|n| n.fsm.clock_enabled());
            sched(
                heap,
                seq,
                now,
                EvKind::Clken {
                    sb: sbi as u32,
                    ena,
                },
            );
        }
    }

    /// Bundled-data push arrival (mirrors the FIFO's `put_req` wake; the
    /// event carries the word captured at transmit time, which under the
    /// half-period ≥ bundle-delay envelope equals what `put_data` holds
    /// when the request lands).
    fn on_push(&mut self, chi: usize, word: u64) {
        let now = self.now;
        let Self {
            fifos,
            heap,
            seq,
            events,
            ..
        } = self;
        let f = &mut fifos[chi];
        if f.virtualized {
            f.drain(now, events);
        }
        if f.occ & 1 != 0 {
            f.overruns += 1;
            return;
        }
        f.occ |= 1;
        f.words[0] = word;
        f.pushes += 1;
        if f.depth > 1 {
            if f.virtualized {
                f.queue_move(now + f.stage_delay, 0);
            } else {
                sched(
                    heap,
                    seq,
                    now + f.stage_delay,
                    EvKind::Move {
                        ch: chi as u32,
                        stage: 0,
                    },
                );
            }
        }
    }

    /// Acknowledge arrival (mirrors the FIFO's `get_ack` wake).
    fn on_pop(&mut self, chi: usize) {
        let now = self.now;
        let Self {
            fifos,
            heap,
            seq,
            events,
            ..
        } = self;
        let f = &mut fifos[chi];
        if f.virtualized {
            f.drain(now, events);
        }
        let head = (f.depth - 1) as usize;
        let head_bit = 1u64 << head;
        if f.occ & head_bit == 0 {
            f.underruns += 1;
            return;
        }
        f.occ ^= head_bit;
        f.pops += 1;
        if head > 0 && f.occ & (head_bit >> 1) != 0 {
            // The word behind the head can now advance.
            if f.virtualized {
                f.queue_move(now + f.stage_delay, (head - 1) as u32);
            } else {
                sched(
                    heap,
                    seq,
                    now + f.stage_delay,
                    EvKind::Move {
                        ch: chi as u32,
                        stage: (head - 1) as u32,
                    },
                );
            }
        }
    }

    /// Stage-advance attempt (mirrors the FIFO's move timer, including
    /// the stale/blocked checks and the follow-up scheduling order).
    fn on_move(&mut self, chi: usize, stage: usize) {
        let now = self.now;
        let Self {
            fifos, heap, seq, ..
        } = self;
        let f = &mut fifos[chi];
        let bit = 1u64 << stage;
        if f.occ & bit == 0 {
            return; // Stale movement (word already popped/advanced).
        }
        if f.occ & (bit << 1) != 0 {
            return; // Blocked; a later pop/advance reschedules.
        }
        f.occ ^= bit | (bit << 1);
        f.words[stage + 1] = f.words[stage];
        let head = (f.depth - 1) as usize;
        if stage + 1 < head {
            sched(
                heap,
                seq,
                now + f.stage_delay,
                EvKind::Move {
                    ch: chi as u32,
                    stage: (stage + 1) as u32,
                },
            );
        }
        if stage > 0 && f.occ & (bit >> 1) != 0 {
            sched(
                heap,
                seq,
                now + f.stage_delay,
                EvKind::Move {
                    ch: chi as u32,
                    stage: (stage - 1) as u32,
                },
            );
        }
    }

    /// Rising edge at the wrapper (a step-for-step port of
    /// `SbWrapper::handle_posedge`, reading FIFO stages directly).
    fn on_posedge(&mut self, sbi: usize) {
        let now = self.now;
        let Self {
            sbs,
            fifos,
            heap,
            seq,
            events,
            chaos,
            ..
        } = self;
        let sb = &mut sbs[sbi];

        // 0. Setup-time check against the modelled critical path.
        let violated = match sb.last_edge {
            Some(prev) if !sb.logic_delay.is_zero() => now.since(prev) < sb.logic_delay,
            _ => false,
        };
        sb.last_edge = Some(now);
        if violated {
            sb.timing_violations += 1;
        }
        if sb.edge_times.len() < sb.edge_times_cap {
            sb.edge_times.push(now);
        }

        // 1–2. Input interfaces, gated by this cycle's enable windows.
        // The node FSMs only advance in step 7, so querying them per
        // interface reads the same pre-step state the wrapper's
        // once-per-cycle enable snapshot would.
        sb.views.clear();
        sb.pops.iter_mut().for_each(|p| *p = false);
        for (i, &(ch, node_idx)) in sb.inputs.iter().enumerate() {
            let ena = sb.nodes[node_idx as usize].fsm.interfaces_enabled();
            let f = &mut fifos[ch as usize];
            if f.virtualized {
                f.drain(now, events);
            }
            let head_bit = 1u64 << (f.depth - 1);
            let head = if f.occ & head_bit != 0 {
                Some(f.words[(f.depth - 1) as usize])
            } else {
                None
            };
            let view = if ena && head.is_some() {
                sb.pops[i] = true;
                InputView {
                    data: head,
                    enabled: true,
                    empty: false,
                }
            } else {
                InputView {
                    data: None,
                    enabled: ena,
                    empty: ena,
                }
            };
            sb.views.push(view);
        }

        // 3. Output availability.
        sb.slots.clear();
        for &(ch, node_idx) in &sb.outputs {
            let f = &mut fifos[ch as usize];
            if f.virtualized {
                f.drain(now, events);
            }
            sb.slots.push(OutputSlot {
                can_send: sb.nodes[node_idx as usize].fsm.interfaces_enabled() && f.occ & 1 == 0,
                word: None,
            });
        }

        // 4. The synchronous logic computes.
        {
            let logic = &mut sb.logic;
            let mut io = SbIo::new(&sb.views, &mut sb.slots);
            logic.tick(sb.cycle, &mut io);
        }

        // 5. Transmit accepted words. The trace row is only assembled
        // while the trace still records (the event backend builds and
        // then drops it, with identical recorded bytes).
        let recording = !sb.trace.is_full();
        let mut writes = if recording {
            Vec::with_capacity(sb.outputs.len())
        } else {
            Vec::new()
        };
        for (k, &(ch, _)) in sb.outputs.iter().enumerate() {
            match sb.slots[k]
                .word
                .map(|w| if violated { w ^ 0x5A5A } else { w })
            {
                Some(w) if sb.slots[k].can_send => {
                    let action = match chaos.as_deref_mut() {
                        Some(c) => c.on_push(ChannelId(ch as usize)),
                        None => DataAction::Deliver,
                    };
                    match action {
                        DataAction::Drop => {
                            // Request toggle lost on the wire; the trace
                            // still records the transmit.
                        }
                        DataAction::Delay(extra) => {
                            let j = match chaos.as_deref_mut() {
                                Some(c) => c.data_jitter(ch * 2),
                                None => SimDuration::ZERO,
                            };
                            sched(
                                heap,
                                seq,
                                now + BUNDLE_DELAY + extra + j,
                                EvKind::Push { ch, word: w },
                            );
                        }
                        DataAction::Deliver => {
                            let j = match chaos.as_deref_mut() {
                                Some(c) => c.data_jitter(ch * 2),
                                None => SimDuration::ZERO,
                            };
                            sched(
                                heap,
                                seq,
                                now + BUNDLE_DELAY + j,
                                EvKind::Push { ch, word: w },
                            );
                        }
                    }
                    if recording {
                        writes.push(Some(w));
                    }
                }
                Some(_) => {
                    sb.dropped_words += 1;
                    if recording {
                        writes.push(None);
                    }
                }
                None => {
                    if recording {
                        writes.push(None);
                    }
                }
            }
        }

        // 6. Acknowledge consumed words.
        for (i, &(ch, _)) in sb.inputs.iter().enumerate() {
            if sb.pops[i] {
                let action = match chaos.as_deref_mut() {
                    Some(c) => c.on_ack(ChannelId(ch as usize)),
                    None => DataAction::Deliver,
                };
                match action {
                    DataAction::Drop => {
                        // Acknowledge toggle lost: the head never pops.
                    }
                    DataAction::Delay(extra) => {
                        let j = match chaos.as_deref_mut() {
                            Some(c) => c.data_jitter(ch * 2 + 1),
                            None => SimDuration::ZERO,
                        };
                        sched(
                            heap,
                            seq,
                            now + BUNDLE_DELAY + extra + j,
                            EvKind::Pop { ch },
                        );
                    }
                    DataAction::Deliver => {
                        let j = match chaos.as_deref_mut() {
                            Some(c) => c.data_jitter(ch * 2 + 1),
                            None => SimDuration::ZERO,
                        };
                        sched(heap, seq, now + BUNDLE_DELAY + j, EvKind::Pop { ch });
                    }
                }
            }
        }

        // 7. Node FSMs advance; tokens pass; clock enable updates.
        let mut any_stop = false;
        for n in &mut sb.nodes {
            let action = n.fsm.on_posedge();
            if action.pass_token {
                let dest = EvKind::Token {
                    sb: n.dest_sb,
                    node: n.dest_node,
                };
                let unit = (n.ring.0 * 2 + usize::from(n.to_holder)) as u32;
                let pass = match chaos.as_deref_mut() {
                    Some(c) => c.on_token_pass(n.ring, n.to_holder),
                    None => TokenPassAction::Deliver,
                };
                match pass {
                    TokenPassAction::Drop => {
                        // Toggle lost on the ring: no arrival, and (as on
                        // the event backend, where no drive happens) no
                        // jitter draw.
                    }
                    TokenPassAction::Delay(extra) => {
                        let j = match chaos.as_deref_mut() {
                            Some(c) => c.token_jitter(unit),
                            None => SimDuration::ZERO,
                        };
                        sched(heap, seq, now + n.pass_delay + extra + j, dest);
                    }
                    TokenPassAction::Duplicate(extra) => {
                        // Two toggles = two arrivals = two drive draws,
                        // exactly like the event backend's pair of
                        // perturbed drives.
                        let (j1, j2) = match chaos.as_deref_mut() {
                            Some(c) => (c.token_jitter(unit), c.token_jitter(unit)),
                            None => (SimDuration::ZERO, SimDuration::ZERO),
                        };
                        sched(heap, seq, now + n.pass_delay + j1, dest);
                        sched(heap, seq, now + n.pass_delay + extra + j2, dest);
                    }
                    TokenPassAction::Deliver => {
                        let j = match chaos.as_deref_mut() {
                            Some(c) => c.token_jitter(unit),
                            None => SimDuration::ZERO,
                        };
                        sched(heap, seq, now + n.pass_delay + j, dest);
                    }
                }
            }
            any_stop |= action.stop_clock;
        }
        if any_stop {
            let ena = sb.nodes.iter().all(|n| n.fsm.clock_enabled());
            sched(
                heap,
                seq,
                now,
                EvKind::Clken {
                    sb: sbi as u32,
                    ena,
                },
            );
        }

        // 8. Record the determinism trace row.
        if recording {
            sb.trace.record(TraceRow {
                cycle: sb.cycle,
                reads: sb.views.iter().map(|v| v.data).collect(),
                writes,
            });
        }
        sb.cycle += 1;
    }

    // --- accessors (mirror `System`) ------------------------------------

    fn min_cycles(&self) -> u64 {
        self.sbs.iter().map(|s| s.cycle).min().unwrap_or(0)
    }

    /// The specification this system was built from.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Local cycles elapsed in `sb`.
    pub fn cycles(&self, sb: SbId) -> u64 {
        self.sbs[sb.0].cycle
    }

    /// The I/O trace of `sb`.
    pub fn io_trace(&self, sb: SbId) -> &SbIoTrace {
        &self.sbs[sb.0].trace
    }

    /// The final state of `sb`'s logic, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the logic attached to `sb` is not a `T`.
    pub fn logic<T: SyncLogic>(&self, sb: SbId) -> &T {
        let logic: &dyn SyncLogic = self.sbs[sb.0].logic.as_ref();
        (logic as &dyn std::any::Any)
            .downcast_ref::<T>()
            .expect("logic type mismatch")
    }

    /// Mutable access to `sb`'s logic.
    ///
    /// # Panics
    ///
    /// Panics if the logic attached to `sb` is not a `T`.
    pub fn logic_mut<T: SyncLogic>(&mut self, sb: SbId) -> &mut T {
        let logic: &mut dyn SyncLogic = self.sbs[sb.0].logic.as_mut();
        (logic as &mut dyn std::any::Any)
            .downcast_mut::<T>()
            .expect("logic type mismatch")
    }

    /// The phase of `sb`'s node on `ring`, if it has one.
    pub fn node_phase(&self, sb: SbId, ring: RingId) -> Option<NodePhase> {
        self.node(sb, ring).map(NodeFsm::phase)
    }

    /// The node FSM itself (token statistics etc.).
    pub fn node(&self, sb: SbId, ring: RingId) -> Option<&NodeFsm> {
        self.sbs[sb.0]
            .nodes
            .iter()
            .find(|n| n.ring == ring)
            .map(|n| &n.fsm)
    }

    /// Mutable node access (debug hooks, SEU injection).
    pub fn node_mut(&mut self, sb: SbId, ring: RingId) -> Option<&mut NodeFsm> {
        self.sbs[sb.0]
            .nodes
            .iter_mut()
            .find(|n| n.ring == ring)
            .map(|n| &mut n.fsm)
    }

    /// SBs whose clocks are currently parked.
    pub fn stopped_sbs(&self) -> Vec<SbId> {
        self.sbs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parked)
            .map(|(i, _)| SbId(i))
            .collect()
    }

    /// Clock statistics: (rising edges, synchronous stops) of `sb`.
    pub fn clock_stats(&self, sb: SbId) -> (u64, u64) {
        let s = &self.sbs[sb.0];
        (s.edges, s.clock_stops)
    }

    /// FIFO statistics for `channel`: (pushes, pops, overruns, underruns).
    pub fn fifo_stats(&self, channel: ChannelId) -> (u64, u64, u64, u64) {
        let f = &self.fifos[channel.0];
        (f.pushes, f.pops, f.overruns, f.underruns)
    }

    /// Words the logic of `sb` attempted to send on blocked channels.
    pub fn dropped_words(&self, sb: SbId) -> u64 {
        self.sbs[sb.0].dropped_words
    }

    /// Bypass-mode metastable samples: always zero (the compiled engine
    /// only runs synchro-tokens mode).
    pub fn metastable_samples(&self, _sb: SbId) -> u64 {
        0
    }

    /// Setup-time violations taken by `sb`.
    pub fn timing_violations(&self, sb: SbId) -> u64 {
        self.sbs[sb.0].timing_violations
    }

    /// Wall-clock times of `sb`'s rising edges, indexed by local cycle
    /// (capped at the trace limit).
    pub fn edge_times(&self, sb: SbId) -> &[SimTime] {
        &self.sbs[sb.0].edge_times
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Typed events processed so far (the engine's analogue of the
    /// kernel's fired-event counter; each event wakes one handler).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// The configuration content key this system (and its checkpoints)
    /// are bound to.
    pub fn spec_hash(&self) -> [u8; 16] {
        self.spec_hash
    }

    /// Freezes the complete engine state into a canonical
    /// [`Checkpoint`]. The compiled engine is always inside the
    /// deterministic envelope; the only remaining requirement is that
    /// every attached logic implements
    /// [`SyncLogic::save_state`](crate::logic::SyncLogic::save_state).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Unsupported`] when a logic cannot save state.
    pub fn checkpoint(&self) -> Result<Checkpoint, CheckpointError> {
        let mut sbs = Vec::with_capacity(self.sbs.len());
        for sb in &self.sbs {
            let logic = sb.logic.save_state().ok_or(CheckpointError::Unsupported(
                "attached logic does not implement save_state",
            ))?;
            sbs.push(CompiledSbDump {
                clk_high: sb.clk_high,
                parked: sb.parked,
                clken: sb.clken,
                edges: sb.edges,
                clock_stops: sb.clock_stops,
                cycle: sb.cycle,
                dropped_words: sb.dropped_words,
                timing_violations: sb.timing_violations,
                last_edge: sb.last_edge,
                edge_times: sb.edge_times.clone(),
                trace: sb.trace.clone(),
                nodes: sb.nodes.iter().map(|n| n.fsm.snapshot()).collect(),
                logic,
            });
        }
        let mut heap: Vec<&Ev> = self.heap.iter().map(|Reverse(ev)| ev).collect();
        heap.sort_unstable_by_key(|ev| (ev.time, ev.seq));
        let heap = heap
            .into_iter()
            .map(|ev| {
                let (kind, a, b) = match ev.kind {
                    EvKind::Push { ch, word } => (0, ch, word),
                    EvKind::Pop { ch } => (1, ch, 0),
                    EvKind::Move { ch, stage } => (2, ch, u64::from(stage)),
                    EvKind::Token { sb, node } => (3, sb, u64::from(node)),
                    EvKind::Clken { sb, ena } => (4, sb, u64::from(ena)),
                };
                CompiledEvDump {
                    time: ev.time,
                    seq: ev.seq,
                    kind,
                    a,
                    b,
                }
            })
            .collect();
        let dump = CompiledStateDump {
            now: self.now,
            seq: self.seq,
            events: self.events,
            clk: self.clk.iter().map(|c| (c.phase, c.posedge)).collect(),
            heap,
            sbs,
            fifos: self
                .fifos
                .iter()
                .map(|f| CompiledFifoDump {
                    occ: f.occ,
                    words: f.words.clone(),
                    pending: f.pending.clone(),
                    pushes: f.pushes,
                    pops: f.pops,
                    overruns: f.overruns,
                    underruns: f.underruns,
                })
                .collect(),
            jitter: self
                .chaos
                .as_ref()
                .and_then(|c| c.jitter.as_ref())
                .map(JitterCounters::snapshot_occ),
            injector: self
                .chaos
                .as_ref()
                .and_then(|c| c.injector.as_ref())
                .map(FaultInjector::snapshot_counters),
        };
        Ok(Checkpoint::new(
            CheckpointBackend::Compiled,
            self.spec_hash,
            self.min_cycles(),
            self.now,
            encode_compiled_payload(&dump),
        ))
    }

    /// Reconstructs a running compiled system from `checkpoint`, using a
    /// builder configured **identically** to the one that produced it.
    /// Continuation from the restored state is byte-identical to a
    /// straight run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BackendMismatch`] for event-backend
    /// checkpoints, [`CheckpointError::Unsupported`] outside the
    /// compiled envelope, [`CheckpointError::SpecMismatch`] when the
    /// builder differs from the originating configuration,
    /// [`CheckpointError::Corrupt`] for malformed payload bytes.
    pub fn resume(
        builder: SystemBuilder,
        checkpoint: &Checkpoint,
    ) -> Result<CompiledSystem, CheckpointError> {
        if checkpoint.backend() != CheckpointBackend::Compiled {
            return Err(CheckpointError::BackendMismatch);
        }
        Self::resume_decoded(builder, &checkpoint.decode()?)
    }

    /// [`resume`](Self::resume) from a pre-decoded checkpoint (see
    /// [`Checkpoint::decode`]): restoring is a plain copy of the decoded
    /// state, so forking many runs from one blob decodes it once.
    ///
    /// # Errors
    ///
    /// As [`resume`](Self::resume), minus the payload decode.
    pub fn resume_decoded(
        builder: SystemBuilder,
        checkpoint: &DecodedCheckpoint,
    ) -> Result<CompiledSystem, CheckpointError> {
        let hash = config_hash(
            &builder.spec,
            builder.seed,
            builder.trace_limit,
            builder.faults.as_ref(),
        );
        if hash != checkpoint.spec_hash() {
            return Err(CheckpointError::SpecMismatch);
        }
        let mut sys = CompiledSystem::lower(builder).map_err(|_| {
            CheckpointError::Unsupported("system is outside the compiled support envelope")
        })?;
        sys.restore_decoded(checkpoint)?;
        Ok(sys)
    }

    /// Restores this engine in place to the checkpointed state, reusing
    /// every existing allocation (trace rows, edge-time ring, FIFO
    /// buffers, event heap). Equivalent to
    /// [`resume_decoded`](Self::resume_decoded) with this engine's own
    /// configuration, minus the lowering: a prefix-fork campaign keeps
    /// one engine per worker and rewinds it per variant instead of
    /// building a fresh one.
    ///
    /// The checkpoint's configuration hash must match this engine's
    /// [`spec_hash`](Self::spec_hash) — same spec, seed, trace limit and
    /// fault plan — so a stale engine cached across campaigns fails
    /// closed with [`CheckpointError::SpecMismatch`] rather than
    /// resuming the wrong workload. On any error the engine state is
    /// unspecified (possibly partially restored); restore again or
    /// discard it.
    ///
    /// # Errors
    ///
    /// - [`CheckpointError::BackendMismatch`] for an event-backend
    ///   checkpoint.
    /// - [`CheckpointError::SpecMismatch`] when the configuration hash
    ///   or any structural shape disagrees.
    pub fn restore_decoded(
        &mut self,
        checkpoint: &DecodedCheckpoint,
    ) -> Result<(), CheckpointError> {
        let crate::checkpoint::DecodedState::Compiled(dump) = &checkpoint.state else {
            return Err(CheckpointError::BackendMismatch);
        };
        if self.spec_hash != checkpoint.spec_hash() {
            return Err(CheckpointError::SpecMismatch);
        }
        if dump.sbs.len() != self.sbs.len()
            || dump.fifos.len() != self.fifos.len()
            || dump.clk.len() != self.clk.len()
        {
            return Err(CheckpointError::SpecMismatch);
        }
        for (sb, d) in self.sbs.iter_mut().zip(&dump.sbs) {
            if d.nodes.len() != sb.nodes.len() || !sb.logic.restore_state(&d.logic) {
                return Err(CheckpointError::SpecMismatch);
            }
            sb.clk_high = d.clk_high;
            sb.parked = d.parked;
            sb.clken = d.clken;
            sb.edges = d.edges;
            sb.clock_stops = d.clock_stops;
            sb.cycle = d.cycle;
            sb.dropped_words = d.dropped_words;
            sb.timing_violations = d.timing_violations;
            sb.last_edge = d.last_edge;
            sb.edge_times.clone_from(&d.edge_times);
            sb.trace.clone_from(&d.trace);
            for (n, snap) in sb.nodes.iter_mut().zip(&d.nodes) {
                n.fsm.restore(snap);
            }
        }
        for (f, d) in self.fifos.iter_mut().zip(&dump.fifos) {
            if d.words.len() != f.words.len() {
                return Err(CheckpointError::SpecMismatch);
            }
            f.occ = d.occ;
            f.words.clone_from(&d.words);
            f.pending.clone_from(&d.pending);
            f.pushes = d.pushes;
            f.pops = d.pops;
            f.overruns = d.overruns;
            f.underruns = d.underruns;
        }
        for (c, &(phase, posedge)) in self.clk.iter_mut().zip(&dump.clk) {
            c.phase = phase;
            c.posedge = posedge;
        }
        self.heap.clear();
        for ev in &dump.heap {
            let kind = match ev.kind {
                0 => EvKind::Push {
                    ch: ev.a,
                    word: ev.b,
                },
                1 => EvKind::Pop { ch: ev.a },
                2 => EvKind::Move {
                    ch: ev.a,
                    stage: ev.b as u32,
                },
                3 => EvKind::Token {
                    sb: ev.a,
                    node: ev.b as u32,
                },
                4 => EvKind::Clken {
                    sb: ev.a,
                    ena: ev.b != 0,
                },
                _ => return Err(CheckpointError::SpecMismatch),
            };
            self.heap.push(Reverse(Ev {
                time: ev.time,
                seq: ev.seq,
                kind,
            }));
        }
        match (
            &dump.jitter,
            self.chaos.as_mut().and_then(|c| c.jitter.as_mut()),
        ) {
            (None, None) => {}
            (Some(bytes), Some(j)) => {
                if !j.restore_occ(bytes) {
                    return Err(CheckpointError::SpecMismatch);
                }
            }
            _ => return Err(CheckpointError::SpecMismatch),
        }
        match (
            &dump.injector,
            self.chaos.as_mut().and_then(|c| c.injector.as_mut()),
        ) {
            (None, None) => {}
            (Some((tok, push, ack)), Some(i)) => {
                if !i.restore_counters(tok, push, ack) {
                    return Err(CheckpointError::SpecMismatch);
                }
            }
            _ => return Err(CheckpointError::SpecMismatch),
        }
        self.now = dump.now;
        self.seq = dump.seq;
        self.events = dump.events;
        Ok(())
    }
}

/// A built system behind either backend, with the common accessor
/// surface delegated. Campaign harnesses and the shmoo runner operate
/// on this so experiments pick the compiled fast path up transparently.
/// (A campaign holds a handful of these at a time, so the variant size
/// gap is not worth an indirection on every accessor.)
#[allow(clippy::large_enum_variant)]
pub enum AnySystem {
    /// The general event-kernel backend.
    Event(System),
    /// The flat typed-event backend.
    Compiled(CompiledSystem),
    /// The event-kernel backend, reached by silent fallback from a
    /// [`Backend::Compiled`] request (behaviourally identical to
    /// `Event`; kept distinct so tests can detect an unexercised fast
    /// path through [`AnySystem::backend_kind`]).
    EventFallback(System),
}

impl std::fmt::Debug for AnySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnySystem::Event(s) | AnySystem::EventFallback(s) => s.fmt(f),
            AnySystem::Compiled(s) => s.fmt(f),
        }
    }
}

impl From<System> for AnySystem {
    fn from(sys: System) -> Self {
        AnySystem::Event(sys)
    }
}

impl From<CompiledSystem> for AnySystem {
    fn from(sys: CompiledSystem) -> Self {
        AnySystem::Compiled(sys)
    }
}

macro_rules! delegate {
    ($self:ident, $sys:ident => $e:expr) => {
        match $self {
            AnySystem::Event($sys) | AnySystem::EventFallback($sys) => $e,
            AnySystem::Compiled($sys) => $e,
        }
    };
}

impl AnySystem {
    /// Which backend is executing this system. A fallback out of the
    /// compiled envelope reports [`Backend::Event`] (it *is* the event
    /// engine); use [`backend_kind`](Self::backend_kind) to tell the
    /// two apart.
    pub fn backend(&self) -> Backend {
        match self {
            AnySystem::Event(_) | AnySystem::EventFallback(_) => Backend::Event,
            AnySystem::Compiled(_) => Backend::Compiled,
        }
    }

    /// Which engine actually runs, distinguishing a requested event
    /// build from a silent fallback. Differential suites assert
    /// [`BackendKind::Compiled`] so they never end up comparing the
    /// event backend against itself.
    pub fn backend_kind(&self) -> BackendKind {
        match self {
            AnySystem::Event(_) => BackendKind::Event,
            AnySystem::Compiled(_) => BackendKind::Compiled,
            AnySystem::EventFallback(_) => BackendKind::EventFallback,
        }
    }

    /// The specification this system was built from.
    pub fn spec(&self) -> &SystemSpec {
        delegate!(self, s => s.spec())
    }

    /// Runs for a span of simulated time.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (combinational loops) from the event
    /// backend; the compiled backend never fails.
    pub fn run_for(&mut self, span: SimDuration) -> Result<RunSummary, SimError> {
        delegate!(self, s => s.run_for(span))
    }

    /// Runs until every SB has executed at least `cycles` local cycles,
    /// deadlock is detected, or `max_time` of simulated time elapses.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (combinational loops) from the event
    /// backend; the compiled backend never fails.
    pub fn run_until_cycles(
        &mut self,
        cycles: u64,
        max_time: SimDuration,
    ) -> Result<RunOutcome, SimError> {
        delegate!(self, s => s.run_until_cycles(cycles, max_time))
    }

    /// Local cycles elapsed in `sb`.
    pub fn cycles(&self, sb: SbId) -> u64 {
        delegate!(self, s => s.cycles(sb))
    }

    /// The I/O trace of `sb`.
    pub fn io_trace(&self, sb: SbId) -> &SbIoTrace {
        delegate!(self, s => s.io_trace(sb))
    }

    /// The final state of `sb`'s logic, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the logic attached to `sb` is not a `T`.
    pub fn logic<T: SyncLogic>(&self, sb: SbId) -> &T {
        delegate!(self, s => s.logic(sb))
    }

    /// Mutable access to `sb`'s logic.
    ///
    /// # Panics
    ///
    /// Panics if the logic attached to `sb` is not a `T`.
    pub fn logic_mut<T: SyncLogic>(&mut self, sb: SbId) -> &mut T {
        delegate!(self, s => s.logic_mut(sb))
    }

    /// The node FSM of `sb` on `ring`, if it has one.
    pub fn node(&self, sb: SbId, ring: RingId) -> Option<&NodeFsm> {
        delegate!(self, s => s.node(sb, ring))
    }

    /// Mutable node access (debug hooks, SEU injection).
    pub fn node_mut(&mut self, sb: SbId, ring: RingId) -> Option<&mut NodeFsm> {
        delegate!(self, s => s.node_mut(sb, ring))
    }

    /// SBs whose clocks are currently parked.
    pub fn stopped_sbs(&self) -> Vec<SbId> {
        delegate!(self, s => s.stopped_sbs())
    }

    /// Clock statistics: (rising edges, synchronous stops) of `sb`.
    pub fn clock_stats(&self, sb: SbId) -> (u64, u64) {
        delegate!(self, s => s.clock_stats(sb))
    }

    /// FIFO statistics for `channel`: (pushes, pops, overruns, underruns).
    pub fn fifo_stats(&self, channel: ChannelId) -> (u64, u64, u64, u64) {
        delegate!(self, s => s.fifo_stats(channel))
    }

    /// Words the logic of `sb` attempted to send on blocked channels.
    pub fn dropped_words(&self, sb: SbId) -> u64 {
        delegate!(self, s => s.dropped_words(sb))
    }

    /// Bypass-mode metastable samples taken in `sb`'s wrapper.
    pub fn metastable_samples(&self, sb: SbId) -> u64 {
        delegate!(self, s => s.metastable_samples(sb))
    }

    /// Setup-time violations taken by `sb`.
    pub fn timing_violations(&self, sb: SbId) -> u64 {
        delegate!(self, s => s.timing_violations(sb))
    }

    /// Wall-clock times of `sb`'s rising edges.
    pub fn edge_times(&self, sb: SbId) -> &[SimTime] {
        delegate!(self, s => s.edge_times(sb))
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        delegate!(self, s => s.now())
    }

    /// Events fired so far (kernel events or compiled typed events —
    /// machine-local work counters, not comparable across backends).
    pub fn events_fired(&self) -> u64 {
        match self {
            AnySystem::Event(s) | AnySystem::EventFallback(s) => s.sim().events_fired(),
            AnySystem::Compiled(s) => s.events_processed(),
        }
    }

    /// Wakes delivered so far (each compiled event wakes one handler).
    pub fn wakes_delivered(&self) -> u64 {
        match self {
            AnySystem::Event(s) | AnySystem::EventFallback(s) => s.sim().wakes_delivered(),
            AnySystem::Compiled(s) => s.events_processed(),
        }
    }

    /// The configuration content key this system (and its checkpoints)
    /// are bound to.
    pub fn spec_hash(&self) -> [u8; 16] {
        delegate!(self, s => s.spec_hash())
    }

    /// Freezes the complete engine state into a canonical
    /// [`Checkpoint`] (tagged with whichever backend is running).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Unsupported`] outside the checkpointable
    /// envelope (see [`System::checkpoint`] and
    /// [`CompiledSystem::checkpoint`]).
    pub fn checkpoint(&self) -> Result<Checkpoint, CheckpointError> {
        delegate!(self, s => s.checkpoint())
    }

    /// Reconstructs a running system from `checkpoint` behind whichever
    /// backend produced it (checkpoints never cross backends), using a
    /// builder configured identically to the originating one.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Unsupported`] when a compiled checkpoint meets
    /// a builder outside the compiled envelope,
    /// [`CheckpointError::SpecMismatch`] when the builder differs from
    /// the originating configuration, [`CheckpointError::Corrupt`] for
    /// malformed payload bytes.
    pub fn resume(
        builder: SystemBuilder,
        checkpoint: &Checkpoint,
    ) -> Result<AnySystem, CheckpointError> {
        match checkpoint.backend() {
            CheckpointBackend::Event => System::resume(builder, checkpoint).map(AnySystem::Event),
            CheckpointBackend::Compiled => {
                CompiledSystem::resume(builder, checkpoint).map(AnySystem::Compiled)
            }
        }
    }

    /// [`resume`](Self::resume) from a pre-decoded checkpoint (see
    /// [`Checkpoint::decode`]): restoring is a plain copy of the decoded
    /// state, so forking many runs from one blob decodes it once.
    ///
    /// # Errors
    ///
    /// As [`resume`](Self::resume), minus the payload decode.
    pub fn resume_decoded(
        builder: SystemBuilder,
        checkpoint: &DecodedCheckpoint,
    ) -> Result<AnySystem, CheckpointError> {
        match checkpoint.backend() {
            CheckpointBackend::Event => {
                System::resume_decoded(builder, checkpoint).map(AnySystem::Event)
            }
            CheckpointBackend::Compiled => {
                CompiledSystem::resume_decoded(builder, checkpoint).map(AnySystem::Compiled)
            }
        }
    }

    /// In-place rewind to a checkpointed state, reusing this engine's
    /// allocations — see [`CompiledSystem::restore_decoded`]. Only the
    /// compiled backend supports it; callers holding an event-backed
    /// system fall back to [`resume_decoded`](Self::resume_decoded).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Unsupported`] on an event-backed system,
    /// otherwise as [`CompiledSystem::restore_decoded`].
    pub fn restore_decoded(
        &mut self,
        checkpoint: &DecodedCheckpoint,
    ) -> Result<(), CheckpointError> {
        match self {
            AnySystem::Event(_) | AnySystem::EventFallback(_) => Err(CheckpointError::Unsupported(
                "in-place restore requires the compiled backend",
            )),
            AnySystem::Compiled(sys) => sys.restore_decoded(checkpoint),
        }
    }
}

impl SystemBuilder {
    /// Builds behind the requested backend. [`Backend::Compiled`] falls
    /// back to the event backend when the system is outside the compiled
    /// engine's support envelope (bypass mode, node observability, a
    /// half-period shorter than the bundled-data delay, or a FIFO deeper
    /// than 64 stages), so the result is always behaviourally identical
    /// to [`SystemBuilder::build`].
    pub fn build_backend(self, backend: Backend) -> AnySystem {
        match backend {
            Backend::Event => AnySystem::Event(self.build()),
            Backend::Compiled => match CompiledSystem::lower(self) {
                Ok(sys) => AnySystem::Compiled(sys),
                Err(builder) => AnySystem::EventFallback(builder.build()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{SequenceSource, SinkCollect};
    use crate::spec::NodeParams;

    fn pair_spec() -> SystemSpec {
        let mut s = SystemSpec::default();
        let a = s.add_sb("tx", SimDuration::ns(10));
        let b = s.add_sb("rx", SimDuration::ns(10));
        let r = s.add_ring(a, b, NodeParams::new(4, 12), SimDuration::ns(30));
        s.add_channel(a, b, r, 16, 4, SimDuration::ns(1));
        s
    }

    fn build_pair(backend: Backend) -> AnySystem {
        SystemBuilder::new(pair_spec())
            .expect("valid spec")
            .with_logic(SbId(0), SequenceSource::new(100, 1))
            .with_logic(SbId(1), SinkCollect::new())
            .build_backend(backend)
    }

    #[test]
    fn compiled_backend_is_selected_for_supported_specs() {
        assert_eq!(build_pair(Backend::Compiled).backend(), Backend::Compiled);
        assert_eq!(build_pair(Backend::Event).backend(), Backend::Event);
    }

    #[test]
    fn bypass_mode_falls_back_to_the_event_backend() {
        let sys = SystemBuilder::new(pair_spec())
            .unwrap()
            .bypass(SimDuration::ps(200))
            .build_backend(Backend::Compiled);
        assert_eq!(sys.backend(), Backend::Event);
    }

    #[test]
    fn backend_kind_distinguishes_fallback_from_explicit_event() {
        assert_eq!(
            build_pair(Backend::Compiled).backend_kind(),
            BackendKind::Compiled
        );
        assert_eq!(
            build_pair(Backend::Event).backend_kind(),
            BackendKind::Event
        );
        let fallback = SystemBuilder::new(pair_spec())
            .unwrap()
            .bypass(SimDuration::ps(200))
            .build_backend(Backend::Compiled);
        assert_eq!(fallback.backend_kind(), BackendKind::EventFallback);
        // `backend()` keeps reporting the engine that actually runs.
        assert_eq!(fallback.backend(), Backend::Event);
    }

    #[test]
    fn sub_bundle_periods_fall_back_to_the_event_backend() {
        let mut spec = pair_spec();
        // Half period below the 1 ps bundled-data delay.
        spec.sbs[0].period = SimDuration::fs(1500);
        let sys = SystemBuilder::new(spec)
            .unwrap()
            .build_backend(Backend::Compiled);
        assert_eq!(sys.backend(), Backend::Event);
    }

    #[test]
    fn pair_matches_event_backend_exactly() {
        let mut ev = build_pair(Backend::Event);
        let mut cc = build_pair(Backend::Compiled);
        let a = ev.run_until_cycles(200, SimDuration::us(100)).unwrap();
        let b = cc.run_until_cycles(200, SimDuration::us(100)).unwrap();
        assert_eq!(a, b);
        assert_eq!(ev.now(), cc.now());
        for i in 0..2 {
            let sb = SbId(i);
            assert_eq!(ev.cycles(sb), cc.cycles(sb));
            assert_eq!(ev.io_trace(sb).rows(), cc.io_trace(sb).rows());
            assert_eq!(ev.clock_stats(sb), cc.clock_stats(sb));
            assert_eq!(ev.edge_times(sb), cc.edge_times(sb));
        }
        assert_eq!(ev.fifo_stats(ChannelId(0)), cc.fifo_stats(ChannelId(0)));
        let sink_ev: &SinkCollect = ev.logic(SbId(1));
        let sink_cc: &SinkCollect = cc.logic(SbId(1));
        assert_eq!(sink_ev.received, sink_cc.received);
    }

    #[test]
    fn compiled_runs_far_fewer_events_than_the_kernel() {
        let mut ev = build_pair(Backend::Event);
        let mut cc = build_pair(Backend::Compiled);
        ev.run_until_cycles(200, SimDuration::us(100)).unwrap();
        cc.run_until_cycles(200, SimDuration::us(100)).unwrap();
        // The count gap is modest (the big win is per-event work: no
        // signal table, watcher lists, wake dedup or per-edge allocs —
        // see the `system_sim` bench), but the typed engine must at
        // least never do more event-dispatch work than the kernel's
        // events + wakes.
        assert!(
            cc.events_fired() < ev.events_fired(),
            "compiled {} vs kernel {} events",
            cc.events_fired(),
            ev.events_fired()
        );
        assert!(cc.wakes_delivered() < ev.wakes_delivered());
    }
}
