//! Building and running a complete synchro-tokens system.
//!
//! [`SystemBuilder`] turns a validated [`SystemSpec`] plus per-SB
//! [`SyncLogic`] into a wired simulation: one stoppable clock and wrapper
//! per SB, one self-timed FIFO per channel, token wires per ring.
//! [`System`] then drives the simulation and exposes every observable the
//! experiments need (I/O traces, cycle counts, node phases, FIFO and
//! clock statistics).

use crate::checkpoint::{
    config_hash, encode_event_payload, Checkpoint, CheckpointBackend, CheckpointError,
    DecodedCheckpoint, EventStateDump,
};
use crate::faults::{AnalogDelayModel, FaultInjector, FaultPlan};
use crate::iotrace::SbIoTrace;
use crate::logic::{IdleLogic, SyncLogic};
use crate::node::{NodeFsm, NodePhase};
use crate::spec::{ChannelId, RingId, SbId, SpecError, SystemSpec};
use crate::wrapper::{
    InputBinding, NodeBinding, NodeObserve, OutputBinding, SbWrapper, WrapperMode,
};
use st_channel::{FifoPorts, SelfTimedFifo};
use st_clocking::{StoppableClock, StoppableClockSpec};
use st_sim::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Constructs a runnable [`System`] from a [`SystemSpec`].
///
/// # Examples
///
/// See the crate-level documentation for a complete two-SB example.
pub struct SystemBuilder {
    pub(crate) spec: SystemSpec,
    pub(crate) logics: BTreeMap<usize, Box<dyn SyncLogic>>,
    pub(crate) seed: u64,
    pub(crate) trace_limit: usize,
    pub(crate) mode: WrapperMode,
    pub(crate) observe_nodes: bool,
    pub(crate) faults: Option<FaultPlan>,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("sbs", &self.spec.sbs.len())
            .field("mode", &self.mode)
            .finish()
    }
}

impl SystemBuilder {
    /// Starts a builder over a validated spec.
    ///
    /// # Errors
    ///
    /// Returns the spec's first [`SpecError`], if any.
    pub fn new(spec: SystemSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        Ok(SystemBuilder {
            spec,
            logics: BTreeMap::new(),
            seed: 0,
            trace_limit: 0,
            mode: WrapperMode::SynchroTokens,
            observe_nodes: false,
            faults: None,
        })
    }

    /// Attaches behaviour to an SB (default: [`IdleLogic`]).
    pub fn with_logic(self, sb: SbId, logic: impl SyncLogic) -> Self {
        self.with_boxed_logic(sb, Box::new(logic))
    }

    /// Attaches already-boxed behaviour (for logic factories).
    pub fn with_boxed_logic(mut self, sb: SbId, logic: Box<dyn SyncLogic>) -> Self {
        self.logics.insert(sb.0, logic);
        self
    }

    /// Seeds the kernel RNG (only bypass-mode metastability consumes it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps each SB's I/O trace at `limit` cycles (0 = unlimited).
    pub fn with_trace_limit(mut self, limit: usize) -> Self {
        self.trace_limit = limit;
        self
    }

    /// Switches every wrapper to the nondeterministic bypass baseline.
    pub fn bypass(mut self, window: SimDuration) -> Self {
        self.mode = WrapperMode::Bypass { window };
        self
    }

    /// Attaches a fault plan: analog perturbations install a
    /// [`DelayModel`] over the clock/token/req/ack wires, protocol
    /// faults install a shared [`FaultInjector`] consulted at every
    /// transmit/acknowledge/token-pass. SEUs in the plan are *not*
    /// applied here — [`crate::faults::run_with_plan`] schedules them by
    /// local cycle at run time.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Exposes per-node `sbena` and counter values as traced signals
    /// (used to regenerate Figure 2); also traces clocks, enables and
    /// token wires.
    pub fn observe_nodes(mut self) -> Self {
        self.observe_nodes = true;
        self
    }

    /// Wires everything and returns the runnable system.
    pub fn build(mut self) -> System {
        let spec = self.spec.clone();
        let spec_hash = config_hash(&spec, self.seed, self.trace_limit, self.faults.as_ref());
        let mut b = SimBuilder::new().with_seed(self.seed);

        let mut analog_model = self
            .faults
            .as_ref()
            .filter(|p| p.analog.is_active())
            .map(|p| AnalogDelayModel::new(p.analog, p.seed));
        let injector = self
            .faults
            .as_ref()
            .filter(|p| !p.protocol.is_empty())
            .map(|p| {
                Rc::new(RefCell::new(FaultInjector::new(
                    p.protocol.clone(),
                    spec.rings.len(),
                    spec.channels.len(),
                )))
            });

        // Per-SB clock signals.
        let mut clk_sigs = Vec::new();
        let mut clken_sigs = Vec::new();
        for sb in &spec.sbs {
            let clk = b.add_bit_signal(&format!("{}.clk", sb.name));
            let clken = b.add_bit_signal(&format!("{}.clken", sb.name));
            if self.observe_nodes {
                b.trace(clk.id());
                b.trace(clken.id());
            }
            if let Some(m) = analog_model.as_mut() {
                m.classify_clk(clk.id(), clk_sigs.len() as u32);
            }
            clk_sigs.push(clk);
            clken_sigs.push(clken);
        }

        // Per-ring token wires: tok[i] = (into holder, into peer).
        let mut tok_sigs = Vec::new();
        for (i, ring) in spec.rings.iter().enumerate() {
            let to_holder = b.add_bit_signal_init(
                &format!("ring{i}.tok_to_{}", spec.sbs[ring.holder.0].name),
                Bit::Zero,
            );
            let to_peer = b.add_bit_signal_init(
                &format!("ring{i}.tok_to_{}", spec.sbs[ring.peer.0].name),
                Bit::Zero,
            );
            if self.observe_nodes {
                b.trace(to_holder.id());
                b.trace(to_peer.id());
            }
            if let Some(m) = analog_model.as_mut() {
                m.classify_token(to_holder.id(), (i * 2 + 1) as u32);
                m.classify_token(to_peer.id(), (i * 2) as u32);
            }
            tok_sigs.push((to_holder, to_peer));
        }

        // Per-channel FIFOs.
        let mut fifo_ports = Vec::new();
        let mut fifo_handles = Vec::new();
        for (i, ch) in spec.channels.iter().enumerate() {
            let name = format!(
                "ch{i}.{}to{}",
                spec.sbs[ch.from.0].name, spec.sbs[ch.to.0].name
            );
            let ports = FifoPorts::declare(&mut b, &name);
            let h = SelfTimedFifo::new(ports, ch.fifo_depth, ch.stage_delay).install(&mut b, &name);
            if let Some(m) = analog_model.as_mut() {
                m.classify_data(ports.put_req.id(), (i * 2) as u32);
                m.classify_data(ports.get_ack.id(), (i * 2 + 1) as u32);
            }
            fifo_ports.push(ports);
            fifo_handles.push(h);
        }

        // Per-SB wrapper + clock.
        let mut wrappers = Vec::new();
        let mut clocks = Vec::new();
        let mut observes: Vec<Vec<(RingId, NodeObserve)>> = vec![Vec::new(); spec.sbs.len()];
        for (i, sb_spec) in spec.sbs.iter().enumerate() {
            let sb = SbId(i);
            // Nodes for every ring touching this SB.
            let mut nodes = Vec::new();
            let mut node_index = BTreeMap::new();
            for (ring_id, ring) in spec.rings_of(sb) {
                let holder_side = ring.holder == sb;
                let fsm = if holder_side {
                    NodeFsm::new_holder(ring.holder_node)
                } else {
                    let initial = ring.peer_initial_recycle.unwrap_or(ring.peer_node.recycle);
                    NodeFsm::new_waiter(ring.peer_node, initial)
                };
                let (to_holder, to_peer) = tok_sigs[ring_id.0];
                let (token_in, peer_token_in, pass_delay) = if holder_side {
                    (to_holder, to_peer, ring.delay_fwd)
                } else {
                    (to_peer, to_holder, ring.delay_back)
                };
                let mut binding = NodeBinding::new(
                    ring_id,
                    fsm,
                    token_in,
                    peer_token_in,
                    pass_delay,
                    // This node's outgoing passes travel toward the
                    // holder iff it sits on the peer side.
                    !holder_side,
                );
                if self.observe_nodes {
                    let prefix = format!("{}.{ring_id}", sb_spec.name);
                    let obs = NodeObserve {
                        sbena: b.add_bit_signal(&format!("{prefix}.sbena")),
                        hold_ctr: b.add_word_signal(&format!("{prefix}.hold")),
                        recycle_ctr: b.add_word_signal(&format!("{prefix}.recycle")),
                    };
                    b.trace(obs.sbena.id());
                    b.trace(obs.hold_ctr.id());
                    b.trace(obs.recycle_ctr.id());
                    observes[i].push((ring_id, obs));
                    binding = binding.with_observe(obs);
                }
                node_index.insert(ring_id, nodes.len());
                nodes.push(binding);
            }

            // Channel endpoints in channel-id order.
            let mut inputs = Vec::new();
            for (cid, ch) in spec.inputs_of(sb) {
                inputs.push(InputBinding::new(
                    cid,
                    node_index[&ch.ring],
                    fifo_ports[cid.0],
                ));
            }
            let mut outputs = Vec::new();
            for (cid, ch) in spec.outputs_of(sb) {
                outputs.push(OutputBinding::new(
                    cid,
                    node_index[&ch.ring],
                    fifo_ports[cid.0],
                ));
            }

            let logic = self
                .logics
                .remove(&i)
                .unwrap_or_else(|| Box::new(IdleLogic));
            let mut wrapper = SbWrapper::new(
                sb,
                self.mode,
                logic,
                clk_sigs[i],
                clken_sigs[i],
                nodes,
                inputs,
                outputs,
                self.trace_limit,
            )
            .with_logic_delay(sb_spec.logic_delay);
            if let Some(inj) = &injector {
                wrapper = wrapper.with_faults(Rc::clone(inj));
            }
            let input_valid_sigs: Vec<SignalId> = spec
                .inputs_of(sb)
                .map(|(cid, _)| fifo_ports[cid.0].head_valid.id())
                .collect();
            let token_ins: Vec<SignalId> = spec
                .rings_of(sb)
                .map(|(rid, r)| {
                    let (to_holder, to_peer) = tok_sigs[rid.0];
                    if r.holder == sb {
                        to_holder.id()
                    } else {
                        to_peer.id()
                    }
                })
                .collect();
            let wh = b.add_component(&format!("{}.wrapper", sb_spec.name), wrapper);
            b.watch(wh.id(), clk_sigs[i].id());
            for t in token_ins {
                b.watch(wh.id(), t);
            }
            if matches!(self.mode, WrapperMode::Bypass { .. }) {
                for v in input_valid_sigs {
                    b.watch(wh.id(), v);
                }
            }
            wrappers.push(wh);

            let clock = StoppableClock::new(
                StoppableClockSpec::from_period(sb_spec.period),
                clk_sigs[i],
                clken_sigs[i],
            );
            let ch = b.add_component(&format!("{}.clock", sb_spec.name), clock);
            b.watch(ch.id(), clken_sigs[i].id());
            clocks.push(ch);
        }

        if let Some(m) = analog_model.take() {
            b.set_delay_model(Box::new(m));
        }

        System {
            sim: b.build(),
            spec,
            spec_hash,
            mode: self.mode,
            observe_nodes: self.observe_nodes,
            wrappers,
            clocks,
            fifos: fifo_handles,
        }
    }
}

/// How a [`System::run_until_cycles`] call ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every SB reached the requested local cycle count.
    Reached,
    /// All clocks stopped with nothing in flight: the system deadlocked.
    /// Carries the SBs whose clocks were parked.
    Deadlock {
        /// The stalled SBs.
        stopped: Vec<SbId>,
    },
    /// The wall-clock budget ran out before either of the above.
    TimedOut,
}

/// A built synchro-tokens system, ready to simulate.
pub struct System {
    sim: Simulator,
    spec: SystemSpec,
    spec_hash: [u8; 16],
    mode: WrapperMode,
    observe_nodes: bool,
    wrappers: Vec<Handle<SbWrapper>>,
    clocks: Vec<Handle<StoppableClock>>,
    fifos: Vec<Handle<SelfTimedFifo>>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("sbs", &self.spec.sbs.len())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl System {
    /// The specification this system was built from.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Runs for a span of simulated time.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (combinational loops).
    pub fn run_for(&mut self, span: SimDuration) -> Result<RunSummary, SimError> {
        self.sim.run_for(span)
    }

    /// Runs until every SB has executed at least `cycles` local cycles,
    /// deadlock is detected, or `max_time` of simulated time elapses.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (combinational loops).
    pub fn run_until_cycles(
        &mut self,
        cycles: u64,
        max_time: SimDuration,
    ) -> Result<RunOutcome, SimError> {
        let deadline = self.sim.now() + max_time;
        let chunk = self
            .spec
            .sbs
            .iter()
            .map(|s| s.period)
            .max()
            .unwrap_or(SimDuration::ns(10))
            * (cycles.max(16));
        loop {
            if self.min_cycles() >= cycles {
                return Ok(RunOutcome::Reached);
            }
            if self.sim.now() >= deadline {
                return Ok(RunOutcome::TimedOut);
            }
            let next = (self.sim.now() + chunk).min(deadline);
            let summary = self.sim.run_until(next)?;
            if self.min_cycles() >= cycles {
                return Ok(RunOutcome::Reached);
            }
            if summary.quiescent {
                // Nothing left in flight: every clock is parked for good.
                return Ok(RunOutcome::Deadlock {
                    stopped: self.stopped_sbs(),
                });
            }
        }
    }

    fn min_cycles(&self) -> u64 {
        self.wrappers
            .iter()
            .map(|w| self.sim.get(*w).cycles())
            .min()
            .unwrap_or(0)
    }

    /// Local cycles elapsed in `sb`.
    pub fn cycles(&self, sb: SbId) -> u64 {
        self.sim.get(self.wrappers[sb.0]).cycles()
    }

    /// The I/O trace of `sb`.
    pub fn io_trace(&self, sb: SbId) -> &SbIoTrace {
        self.sim.get(self.wrappers[sb.0]).trace()
    }

    /// The final state of `sb`'s logic, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the logic attached to `sb` is not a `T`.
    pub fn logic<T: SyncLogic>(&self, sb: SbId) -> &T {
        self.sim
            .get(self.wrappers[sb.0])
            .logic_any()
            .downcast_ref::<T>()
            .expect("logic type mismatch")
    }

    /// Mutable access to `sb`'s logic (deterministic debug/state
    /// injection, e.g. scan-in after a breakpoint).
    ///
    /// # Panics
    ///
    /// Panics if the logic attached to `sb` is not a `T`.
    pub fn logic_mut<T: SyncLogic>(&mut self, sb: SbId) -> &mut T {
        self.sim
            .get_mut(self.wrappers[sb.0])
            .logic_any_mut()
            .downcast_mut::<T>()
            .expect("logic type mismatch")
    }

    /// Rewrites the hold/recycle registers of `sb`'s node on `ring`
    /// (the §4.2 scan-accessible registers). Takes effect at the next
    /// counter preset.
    ///
    /// # Panics
    ///
    /// Panics if `sb` has no node on `ring`.
    pub fn set_node_params(&mut self, sb: SbId, ring: RingId, params: crate::spec::NodeParams) {
        self.sim
            .get_mut(self.wrappers[sb.0])
            .node_mut(ring)
            .expect("sb has no node on that ring")
            .set_params(params);
    }

    /// The phase of `sb`'s node on `ring`, if it has one.
    pub fn node_phase(&self, sb: SbId, ring: RingId) -> Option<NodePhase> {
        self.sim
            .get(self.wrappers[sb.0])
            .node(ring)
            .map(NodeFsm::phase)
    }

    /// The node FSM itself (token statistics etc.).
    pub fn node(&self, sb: SbId, ring: RingId) -> Option<&NodeFsm> {
        self.sim.get(self.wrappers[sb.0]).node(ring)
    }

    /// Mutable node access (debug hooks, SEU injection).
    pub fn node_mut(&mut self, sb: SbId, ring: RingId) -> Option<&mut NodeFsm> {
        self.sim.get_mut(self.wrappers[sb.0]).node_mut(ring)
    }

    /// SBs whose clocks are currently parked.
    pub fn stopped_sbs(&self) -> Vec<SbId> {
        self.clocks
            .iter()
            .enumerate()
            .filter(|(_, c)| self.sim.get(**c).is_parked())
            .map(|(i, _)| SbId(i))
            .collect()
    }

    /// Clock statistics: (rising edges, synchronous stops) of `sb`.
    pub fn clock_stats(&self, sb: SbId) -> (u64, u64) {
        let c = self.sim.get(self.clocks[sb.0]);
        (c.edges(), c.stops())
    }

    /// FIFO statistics for `channel`: (pushes, pops, overruns, underruns).
    pub fn fifo_stats(&self, channel: ChannelId) -> (u64, u64, u64, u64) {
        let f = self.sim.get(self.fifos[channel.0]);
        (f.pushes(), f.pops(), f.overruns(), f.underruns())
    }

    /// Words the logic of `sb` attempted to send on blocked channels.
    pub fn dropped_words(&self, sb: SbId) -> u64 {
        self.sim.get(self.wrappers[sb.0]).dropped_words()
    }

    /// Bypass-mode metastable samples taken in `sb`'s wrapper.
    pub fn metastable_samples(&self, sb: SbId) -> u64 {
        self.sim.get(self.wrappers[sb.0]).metastable_samples()
    }

    /// Setup-time violations taken by `sb` (clocked faster than its
    /// modelled critical path).
    pub fn timing_violations(&self, sb: SbId) -> u64 {
        self.sim.get(self.wrappers[sb.0]).timing_violations()
    }

    /// Engages or releases the §4.2 indefinite-hold debug hook on every
    /// node of `sb` — the "holding tokens indefinitely in the Test SB"
    /// mechanism behind deterministic breakpoints.
    pub fn set_hold_tokens(&mut self, sb: SbId, on: bool) {
        self.sim
            .get_mut(self.wrappers[sb.0])
            .set_hold_all_tokens(on);
    }

    /// Wall-clock times of `sb`'s rising edges, indexed by local cycle
    /// (capped at the trace limit). Used by latency measurements.
    pub fn edge_times(&self, sb: SbId) -> &[SimTime] {
        self.sim.get(self.wrappers[sb.0]).edge_times()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The underlying simulator (waveforms, raw signals).
    pub fn sim(&self) -> &Simulator {
        &self.sim
    }

    /// Mutable access to the underlying simulator (stimulus injection).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The configuration content key this system (and its checkpoints)
    /// are bound to.
    pub fn spec_hash(&self) -> [u8; 16] {
        self.spec_hash
    }

    fn checkpoint_gate(&self) -> Result<(), CheckpointError> {
        if !matches!(self.mode, WrapperMode::SynchroTokens) {
            return Err(CheckpointError::Unsupported(
                "bypass mode draws kernel RNG per metastable sample",
            ));
        }
        if self.observe_nodes {
            return Err(CheckpointError::Unsupported(
                "observed builds fill the waveform trace buffer",
            ));
        }
        Ok(())
    }

    /// Freezes the complete engine state into a canonical
    /// [`Checkpoint`].
    ///
    /// Only supported in synchro-tokens mode without node observability
    /// (the deterministic envelope — kernel RNG untouched, waveform
    /// buffer empty) and when every attached logic implements
    /// [`SyncLogic::save_state`](crate::logic::SyncLogic::save_state).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Unsupported`] outside that envelope.
    pub fn checkpoint(&self) -> Result<Checkpoint, CheckpointError> {
        self.checkpoint_gate()?;
        let mut wrappers = Vec::with_capacity(self.wrappers.len());
        for w in &self.wrappers {
            wrappers.push(
                self.sim
                    .get(*w)
                    .snapshot()
                    .ok_or(CheckpointError::Unsupported(
                        "attached logic does not implement save_state",
                    ))?,
            );
        }
        let clocks = self
            .clocks
            .iter()
            .map(|c| self.sim.get(*c).snapshot())
            .collect();
        let fifos = self
            .fifos
            .iter()
            .map(|f| self.sim.get(*f).snapshot())
            .collect();
        let injector = self
            .wrappers
            .first()
            .and_then(|w| self.sim.get(*w).faults_rc())
            .map(|rc| rc.borrow().snapshot_counters());
        let dump = EventStateDump {
            kernel: self.sim.snapshot_kernel(),
            wrappers,
            clocks,
            fifos,
            injector,
        };
        Ok(Checkpoint::new(
            CheckpointBackend::Event,
            self.spec_hash,
            self.min_cycles(),
            self.sim.now(),
            encode_event_payload(&dump),
        ))
    }

    /// Reconstructs a running system from `checkpoint`, using a builder
    /// configured **identically** to the one that produced it. The
    /// builder's configuration hash is checked against the checkpoint's;
    /// continuation from the restored state is byte-identical to a
    /// straight run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BackendMismatch`] for compiled-backend
    /// checkpoints, [`CheckpointError::SpecMismatch`] when the builder
    /// differs from the originating configuration,
    /// [`CheckpointError::Corrupt`] for malformed payload bytes.
    pub fn resume(
        builder: SystemBuilder,
        checkpoint: &Checkpoint,
    ) -> Result<System, CheckpointError> {
        if checkpoint.backend() != CheckpointBackend::Event {
            return Err(CheckpointError::BackendMismatch);
        }
        Self::resume_decoded(builder, &checkpoint.decode()?)
    }

    /// [`resume`](Self::resume) from a pre-decoded checkpoint (see
    /// [`Checkpoint::decode`]): restoring is a plain copy of the decoded
    /// state, so forking many runs from one blob decodes it once.
    ///
    /// # Errors
    ///
    /// As [`resume`](Self::resume), minus the payload decode.
    pub fn resume_decoded(
        builder: SystemBuilder,
        checkpoint: &DecodedCheckpoint,
    ) -> Result<System, CheckpointError> {
        let crate::checkpoint::DecodedState::Event(dump) = &checkpoint.state else {
            return Err(CheckpointError::BackendMismatch);
        };
        let hash = config_hash(
            &builder.spec,
            builder.seed,
            builder.trace_limit,
            builder.faults.as_ref(),
        );
        if hash != checkpoint.spec_hash() {
            return Err(CheckpointError::SpecMismatch);
        }
        let mut sys = builder.build();
        sys.checkpoint_gate()?;
        if !sys.sim.restore_kernel(&dump.kernel) {
            return Err(CheckpointError::SpecMismatch);
        }
        if dump.wrappers.len() != sys.wrappers.len()
            || dump.clocks.len() != sys.clocks.len()
            || dump.fifos.len() != sys.fifos.len()
        {
            return Err(CheckpointError::SpecMismatch);
        }
        for (h, snap) in sys.wrappers.iter().zip(&dump.wrappers) {
            if !sys.sim.get_mut(*h).restore(snap) {
                return Err(CheckpointError::SpecMismatch);
            }
        }
        for (h, &(parked, edges, stops)) in sys.clocks.iter().zip(&dump.clocks) {
            sys.sim.get_mut(*h).restore(parked, edges, stops);
        }
        for (h, snap) in sys.fifos.iter().zip(&dump.fifos) {
            if !sys.sim.get_mut(*h).restore(snap) {
                return Err(CheckpointError::SpecMismatch);
            }
        }
        let rc = sys
            .wrappers
            .first()
            .and_then(|w| sys.sim.get(*w).faults_rc())
            .cloned();
        match (&dump.injector, rc) {
            (None, None) => {}
            (Some((tok, push, ack)), Some(rc)) => {
                if !rc.borrow_mut().restore_counters(tok, push, ack) {
                    return Err(CheckpointError::SpecMismatch);
                }
            }
            _ => return Err(CheckpointError::SpecMismatch),
        }
        Ok(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{SequenceSource, SinkCollect};
    use crate::spec::NodeParams;

    /// A comfortable producer → consumer pair:
    /// hold 4, recycle 12, ring delay 30ns, FIFO depth 4, F = 1ns.
    fn pair_spec() -> SystemSpec {
        let mut s = SystemSpec::default();
        let a = s.add_sb("tx", SimDuration::ns(10));
        let b = s.add_sb("rx", SimDuration::ns(10));
        let r = s.add_ring(a, b, NodeParams::new(4, 12), SimDuration::ns(30));
        s.add_channel(a, b, r, 16, 4, SimDuration::ns(1));
        s
    }

    fn build_pair() -> System {
        SystemBuilder::new(pair_spec())
            .expect("valid spec")
            .with_logic(SbId(0), SequenceSource::new(100, 1))
            .with_logic(SbId(1), SinkCollect::new())
            .build()
    }

    #[test]
    fn words_flow_in_order_across_the_pair() {
        let mut sys = build_pair();
        let out = sys.run_until_cycles(200, SimDuration::us(100)).unwrap();
        assert_eq!(out, RunOutcome::Reached);
        let sink: &SinkCollect = sys.logic(SbId(1));
        let words = sink.words_on(0);
        assert!(words.len() >= 8, "got {} words", words.len());
        let expect: Vec<u64> = (100..100 + words.len() as u64).collect();
        assert_eq!(words, expect, "in order, none lost or duplicated");
        let (pushes, pops, over, under) = sys.fifo_stats(ChannelId(0));
        assert_eq!(over, 0);
        assert_eq!(under, 0);
        assert_eq!(pushes, pops + sys.sim.get(sys.fifos[0]).occupancy() as u64);
    }

    #[test]
    fn token_alternates_between_nodes() {
        let mut sys = build_pair();
        sys.run_until_cycles(100, SimDuration::us(100)).unwrap();
        let a = sys.node(SbId(0), RingId(0)).unwrap();
        let b = sys.node(SbId(1), RingId(0)).unwrap();
        assert!(a.passes() >= 3);
        // Passes alternate: counts differ by at most one.
        assert!(a.passes().abs_diff(b.passes()) <= 1);
    }

    #[test]
    fn clock_stops_when_ring_delay_exceeds_recycle() {
        let mut spec = pair_spec();
        // Stretch the ring so the token is always late.
        spec.rings[0].delay_fwd = SimDuration::us(1);
        spec.rings[0].delay_back = SimDuration::us(1);
        let mut sys = SystemBuilder::new(spec)
            .unwrap()
            .with_logic(SbId(0), SequenceSource::new(0, 1))
            .with_logic(SbId(1), SinkCollect::new())
            .build();
        sys.run_until_cycles(50, SimDuration::us(300)).unwrap();
        let (_, stops_tx) = sys.clock_stats(SbId(0));
        assert!(stops_tx > 0, "late tokens must stop the clock");
    }

    #[test]
    fn io_schedule_is_identical_under_delay_scaling() {
        // The core determinism property, in miniature: scale the ring
        // delay and the FIFO stage delay; the sink's I/O trace (in local
        // cycles) must not change.
        let run = |ring_pct: u64, f_pct: u64| {
            let mut spec = pair_spec();
            spec.rings[0].delay_fwd = spec.rings[0].delay_fwd.percent(ring_pct);
            spec.rings[0].delay_back = spec.rings[0].delay_back.percent(ring_pct);
            spec.channels[0].stage_delay = spec.channels[0].stage_delay.percent(f_pct);
            let mut sys = SystemBuilder::new(spec)
                .unwrap()
                .with_logic(SbId(0), SequenceSource::new(7, 3))
                .with_logic(SbId(1), SinkCollect::new())
                .with_trace_limit(100)
                .build();
            sys.run_until_cycles(100, SimDuration::us(200)).unwrap();
            (
                sys.io_trace(SbId(0)).digest(),
                sys.io_trace(SbId(1)).digest(),
            )
        };
        let nominal = run(100, 100);
        for (rp, fp) in [(50, 100), (200, 100), (100, 50), (100, 200), (200, 200)] {
            assert_eq!(run(rp, fp), nominal, "ring {rp}%, F {fp}% diverged");
        }
    }

    #[test]
    fn bypass_mode_runs_and_sees_metastability() {
        let mut sys = SystemBuilder::new(pair_spec())
            .unwrap()
            .with_logic(SbId(0), SequenceSource::new(0, 1))
            .with_logic(SbId(1), SinkCollect::new())
            .bypass(SimDuration::ps(200))
            .with_seed(3)
            .build();
        let out = sys.run_until_cycles(200, SimDuration::us(100)).unwrap();
        assert_eq!(out, RunOutcome::Reached);
        let (_, stops) = sys.clock_stats(SbId(1));
        assert_eq!(stops, 0, "bypass clocks never stop");
        let sink: &SinkCollect = sys.logic(SbId(1));
        assert!(!sink.received.is_empty(), "data still flows in bypass");
    }

    #[test]
    fn logic_type_mismatch_panics() {
        let sys = build_pair();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: &SinkCollect = sys.logic(SbId(0)); // actually a source
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn invalid_spec_is_rejected_at_build() {
        let mut s = pair_spec();
        s.channels[0].bits = 0;
        assert!(SystemBuilder::new(s).is_err());
    }
}
