//! Deterministic parallel campaign execution.
//!
//! Every experiment harness in this reproduction (the E1 determinism
//! sweep, the E8 scalability study) is a *bag of independent runs*: each
//! run builds its own [`Simulator`](st_sim::prelude::SimBuilder) from a
//! config, runs it to a budget, and reduces to a small result. Per-run
//! determinism is a property of the kernel (single-threaded, seeded);
//! nothing about it requires the *runs* to execute one after another.
//!
//! [`run_jobs`] fans a job list across OS threads with
//! `std::thread::scope` (no external dependencies — the dependency
//! policy in DESIGN.md §7 is unchanged) and merges results back **in
//! canonical job order**, so the output is bit-identical to a sequential
//! map regardless of thread count or completion interleaving. Campaign
//! reports produced through it are therefore byte-identical at 1, 2, or
//! N threads — asserted by the `campaign` integration tests.
//!
//! The worker-thread count comes from, in priority order: an explicit
//! argument, the `ST_THREADS` environment variable, and the machine's
//! available parallelism.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Resolves the worker-thread count for campaign runners.
///
/// `ST_THREADS` (a positive integer) overrides the machine's available
/// parallelism. An unparsable or zero value falls back to available
/// parallelism, with a one-time stderr warning naming the rejected
/// value — a silently ignored knob is worse than a noisy one.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ST_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring ST_THREADS={v:?} (want a positive integer); \
                         falling back to available parallelism"
                    );
                });
            }
        }
    }
    thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `worker` over every job, fanned across up to `threads` OS
/// threads, returning results **in job order**.
///
/// Work is claimed from a shared atomic cursor, so long and short jobs
/// balance across workers; each worker buffers `(index, result)` pairs
/// and the merge reorders them canonically. The returned `Vec` is
/// bit-identical to `jobs.iter().enumerate().map(worker).collect()` for
/// any pure `worker`, at any thread count.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn run_jobs<T, R, F>(jobs: &[T], threads: usize, worker: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads == 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(i, job)| worker(i, job))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        out.push((i, worker(i, &jobs[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "job {i} executed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every job executed exactly once"))
        .collect()
}

/// Wall-clock and kernel-throughput counters for a completed campaign.
///
/// Excluded from campaign *reports* by design: reports must stay
/// byte-identical across thread counts and machines, while these
/// counters exist precisely to track machine-dependent throughput
/// (BENCH_*.json trajectories).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CampaignStats {
    /// Simulation runs executed (including the nominal reference).
    pub runs: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole campaign.
    pub wall_seconds: f64,
    /// Kernel events fired, summed over every run.
    pub events_fired: u64,
    /// Component wakes delivered, summed over every run.
    pub wakes: u64,
}

impl CampaignStats {
    /// Aggregate kernel throughput: events fired per wall-clock second.
    pub fn events_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.events_fired as f64 / self.wall_seconds
    }
}

impl fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs on {} thread(s): {:.2}s wall, {} events ({:.2} M events/s), {} wakes",
            self.runs,
            self.threads,
            self.wall_seconds,
            self.events_fired,
            self.events_per_second() / 1e6,
            self.wakes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<u64> = (0..257).collect();
        let f = |i: usize, j: &u64| -> u64 {
            // Deterministic result, jittered runtime so completion order
            // differs from job order.
            if i.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            j.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13)
        };
        let sequential = run_jobs(&jobs, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(run_jobs(&jobs, threads, f), sequential, "{threads} threads");
        }
    }

    #[test]
    fn run_jobs_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_jobs(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(run_jobs(&[9u32], 4, |i, x| (i, *x)), vec![(0, 9)]);
    }

    #[test]
    fn stats_compute_throughput() {
        let s = CampaignStats {
            runs: 10,
            threads: 2,
            wall_seconds: 2.0,
            events_fired: 4_000_000,
            wakes: 7,
        };
        assert!((s.events_per_second() - 2e6).abs() < 1e-9);
        let text = s.to_string();
        assert!(text.contains("10 runs"));
        assert!(text.contains("2.00 M events/s"));
        assert_eq!(CampaignStats::default().events_per_second(), 0.0);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
