//! Deterministic parallel campaign execution.
//!
//! Every experiment harness in this reproduction (the E1 determinism
//! sweep, the E8 scalability study) is a *bag of independent runs*: each
//! run builds its own [`Simulator`](st_sim::prelude::SimBuilder) from a
//! config, runs it to a budget, and reduces to a small result. Per-run
//! determinism is a property of the kernel (single-threaded, seeded);
//! nothing about it requires the *runs* to execute one after another.
//!
//! [`run_jobs`] fans a job list across OS threads with
//! `std::thread::scope` (no external dependencies — the dependency
//! policy in DESIGN.md §7 is unchanged) and merges results back **in
//! canonical job order**, so the output is bit-identical to a sequential
//! map regardless of thread count or completion interleaving. Campaign
//! reports produced through it are therefore byte-identical at 1, 2, or
//! N threads — asserted by the `campaign` integration tests.
//!
//! The worker-thread count comes from, in priority order: an explicit
//! argument, the `ST_THREADS` environment variable, and the machine's
//! available parallelism.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Parses a positive-integer thread-count knob from the environment,
/// with the clamp-and-warn policy shared by every `*_THREADS` variable
/// in this workspace (`ST_THREADS`, `ST_SERVE_THREADS`, …):
///
/// * unset → `None` (caller picks its own fallback),
/// * a positive integer → `Some(n)`,
/// * `0` → `Some(1)` — the user asked for "as little parallelism as
///   possible", and handing 0 to a runner would be an invalid thread
///   count,
/// * unparsable → `None`, falling through to the caller's fallback.
///
/// The clamp and the parse failure each emit a one-time-per-variable
/// stderr warning naming the rejected value: a silently ignored knob is
/// worse than a noisy one.
pub fn threads_from_env(var: &str) -> Option<usize> {
    fn warn_once(var: &str, msg: String) {
        static WARNED: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let mut seen = WARNED.lock().expect("thread-knob warning registry");
        if !seen.iter().any(|v| v == var) {
            seen.push(var.to_owned());
            eprintln!("{msg}");
        }
    }
    let v = std::env::var(var).ok()?;
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        Ok(_) => {
            warn_once(
                var,
                format!("warning: clamping {var}=0 to 1 (want a positive integer)"),
            );
            Some(1)
        }
        Err(_) => {
            warn_once(
                var,
                format!(
                    "warning: ignoring {var}={v:?} (want a positive integer); \
                     falling back to the default"
                ),
            );
            None
        }
    }
}

/// Resolves the worker-thread count for campaign runners.
///
/// `ST_THREADS` (a positive integer) overrides the machine's available
/// parallelism, with the [`threads_from_env`] clamp-and-warn policy;
/// unset or unparsable falls back to available parallelism.
pub fn default_threads() -> usize {
    threads_from_env("ST_THREADS")
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, usize::from))
}

/// The default lane cap for [`BatchedSystem`](crate::BatchedSystem)
/// batch formation: one FIFO occupancy bitmask word's worth of lanes.
pub const DEFAULT_BATCH_LIMIT: usize = 64;

/// Resolves the campaign batching knob: `ST_BATCH` caps how many
/// configurations the batched backend packs into one lockstep group.
/// Unset (or unparsable) means [`DEFAULT_BATCH_LIMIT`]; `ST_BATCH=1`
/// disables cross-configuration batching (every lane runs scalar);
/// `ST_BATCH=0` clamps to 1 with the shared clamp-and-warn policy.
pub fn batch_limit_from_env() -> usize {
    threads_from_env("ST_BATCH").unwrap_or(DEFAULT_BATCH_LIMIT)
}

/// A cooperative cancellation flag shared between a campaign's caller
/// and its workers.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// flag. Cancellation is *cooperative at job granularity*: a worker
/// checks the token before claiming each job, so an in-flight job runs
/// to completion but nothing new starts. That is the right grain for
/// this codebase — individual simulation runs are budget-bounded and
/// short, while campaigns are thousands of them.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Optional observation/control hooks for [`run_jobs_hooked`].
///
/// `progress` is invoked after every completed job with
/// `(jobs_completed_so_far, total_jobs)`. Under a multi-threaded fan-out
/// the calls come from worker threads and may arrive out of order
/// (completion order, not job order); the completed count is
/// monotonically accurate. The callback must be cheap — it runs on the
/// campaign's hot path.
#[derive(Default, Clone, Copy)]
pub struct RunHooks<'a> {
    /// Checked before each job is claimed; see [`CancelToken`].
    pub cancel: Option<&'a CancelToken>,
    /// `(completed, total)` after each finished job.
    pub progress: Option<&'a (dyn Fn(usize, usize) + Sync)>,
}

impl fmt::Debug for RunHooks<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunHooks")
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.map(|_| "<fn>"))
            .finish()
    }
}

/// The partial state of a cancelled campaign: every `(job index, result)`
/// pair that completed before the token was honoured, in job order.
#[derive(Debug)]
pub struct Cancelled<R> {
    /// Completed jobs, sorted by job index.
    pub completed: Vec<(usize, R)>,
    /// The campaign's total job count.
    pub total: usize,
}

impl<R> fmt::Display for Cancelled<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "campaign cancelled after {} of {} jobs",
            self.completed.len(),
            self.total
        )
    }
}

/// Runs `worker` over every job, fanned across up to `threads` OS
/// threads (capped at the machine's available parallelism — CPU-bound
/// workers cannot profit from oversubscription), returning results
/// **in job order**.
///
/// Work is claimed from a shared atomic cursor, so long and short jobs
/// balance across workers; each worker buffers `(index, result)` pairs
/// and the merge reorders them canonically. The returned `Vec` is
/// bit-identical to `jobs.iter().enumerate().map(worker).collect()` for
/// any pure `worker`, at any thread count.
///
/// # Panics
///
/// A panicking worker aborts the campaign: remaining workers stop
/// claiming jobs, and the panic is re-raised on the calling thread
/// annotated with the failing job's index and `Debug` rendering (which
/// for campaign jobs carries the configuration/seed that crashed). When
/// several workers panic concurrently, the lowest failing job index is
/// reported, so the message is deterministic.
pub fn run_jobs<T, R, F>(jobs: &[T], threads: usize, worker: F) -> Vec<R>
where
    T: Sync + fmt::Debug,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match run_jobs_hooked(jobs, threads, RunHooks::default(), worker) {
        Ok(results) => results,
        Err(_) => unreachable!("no cancel token was installed"),
    }
}

/// The worker-thread count [`run_jobs`] / [`run_jobs_hooked`] will
/// actually fan across for a request of `threads`: capped at the
/// machine's available parallelism. Campaign workers are CPU-bound
/// simulations, so oversubscription buys zero extra progress and pays
/// real context-switch overhead (BENCH_5's one-core container ran
/// `campaign_pingpong_4threads` *slower* than one thread). Callers
/// with blocking or IO-heavy workers that genuinely profit from more
/// threads than cores should build their own fan-out instead of
/// routing through the campaign runners.
///
/// Public so campaign reporters can record the thread count that
/// actually ran ([`CampaignStats::threads`]) rather than the one that
/// was requested — a silently reduced fan-out should at least be
/// visible in the stats.
pub fn effective_threads(threads: usize) -> usize {
    let cores = thread::available_parallelism().map_or(usize::MAX, usize::from);
    threads.min(cores).max(1)
}

/// [`run_jobs`] with cooperative cancellation and progress reporting.
///
/// Behaves exactly like [`run_jobs`] — same canonical-order merge, same
/// panic propagation, same [`effective_threads`] cap at the machine's
/// available parallelism — until `hooks.cancel` is tripped, at which point
/// workers stop claiming new jobs promptly (the token is checked before
/// every claim) and the call returns [`Cancelled`] carrying every job
/// that *did* complete, in job order. `hooks.progress` fires once per
/// completed job with `(completed, total)`.
///
/// # Errors
///
/// Returns [`Cancelled`] (with partial, job-ordered results) when the
/// token is cancelled before the last job is claimed.
///
/// # Panics
///
/// Worker panics propagate exactly as in [`run_jobs`], and take
/// precedence over concurrent cancellation.
pub fn run_jobs_hooked<T, R, F>(
    jobs: &[T],
    threads: usize,
    hooks: RunHooks<'_>,
    worker: F,
) -> Result<Vec<R>, Cancelled<R>>
where
    T: Sync + fmt::Debug,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    // See [`effective_threads`] for the cap rationale; the fan-out
    // machinery itself stays directly testable via [`run_jobs_fanned`].
    run_jobs_fanned(jobs, effective_threads(threads), hooks, worker)
}

/// The uncapped fan-out engine behind [`run_jobs_hooked`]: claims jobs
/// from a shared cursor across exactly `threads` workers (the calling
/// thread is worker 0), merges in canonical job order.
fn run_jobs_fanned<T, R, F>(
    jobs: &[T],
    threads: usize,
    hooks: RunHooks<'_>,
    worker: F,
) -> Result<Vec<R>, Cancelled<R>>
where
    T: Sync + fmt::Debug,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, jobs.len().max(1));
    let cancelled = || hooks.cancel.is_some_and(CancelToken::is_cancelled);
    let done = AtomicUsize::new(0);
    let report = || {
        let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(p) = hooks.progress {
            p(completed, jobs.len());
        }
    };
    if threads == 1 {
        let mut out = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            if cancelled() {
                return Err(Cancelled {
                    completed: out.into_iter().enumerate().collect(),
                    total: jobs.len(),
                });
            }
            match catch_unwind(AssertUnwindSafe(|| worker(i, job))) {
                Ok(r) => out.push(r),
                Err(payload) => rethrow(i, job, payload),
            }
            report();
        }
        return Ok(out);
    }
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    type Fail = (usize, Box<dyn std::any::Any + Send>);
    let work = || -> Result<Vec<(usize, R)>, Fail> {
        let mut out = Vec::new();
        loop {
            if failed.load(Ordering::Relaxed) || cancelled() {
                break;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= jobs.len() {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| worker(i, &jobs[i]))) {
                Ok(r) => out.push((i, r)),
                Err(payload) => {
                    failed.store(true, Ordering::Relaxed);
                    return Err((i, payload));
                }
            }
            report();
        }
        Ok(out)
    };
    // The calling thread is worker 0 and only `threads - 1` helpers are
    // spawned: `threads` workers total, but the caller claims jobs
    // instead of idling in `join()`. On a machine whose available
    // parallelism is below the requested thread count (the degenerate
    // case: one core), the campaign then degrades toward the sequential
    // path's cost instead of paying spawn/context-switch overhead for
    // zero extra progress (the BENCH_5 `campaign_pingpong_4threads`
    // regression).
    let buckets: Vec<Result<Vec<(usize, R)>, Fail>> = thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = (1..threads).map(|_| s.spawn(work)).collect();
        let mut buckets = vec![work()];
        buckets.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker thread died outside a job")),
        );
        buckets
    });
    if failed.load(Ordering::Relaxed) {
        let (i, payload) = buckets
            .into_iter()
            .filter_map(Result::err)
            .min_by_key(|(i, _)| *i)
            .expect("a failure was flagged");
        rethrow(i, &jobs[i], payload);
    }
    let mut pairs: Vec<(usize, R)> = buckets.into_iter().flatten().flatten().collect();
    pairs.sort_by_key(|(i, _)| *i);
    if cancelled() && pairs.len() < jobs.len() {
        return Err(Cancelled {
            completed: pairs,
            total: jobs.len(),
        });
    }
    debug_assert!(
        pairs.iter().enumerate().all(|(slot, (i, _))| slot == *i),
        "every job executed exactly once"
    );
    Ok(pairs.into_iter().map(|(_, r)| r).collect())
}

/// Re-raises a caught worker panic annotated with the failing job. A
/// string payload is folded into the new message; any other payload is
/// resumed as-is after printing the job context to stderr (so the
/// original typed payload — e.g. from `panic_any` — is preserved for
/// callers that downcast it).
fn rethrow<T: fmt::Debug>(i: usize, job: &T, payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = payload
        .downcast_ref::<&'static str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned());
    match msg {
        Some(m) => panic!("campaign worker panicked on job {i} ({job:?}): {m}"),
        None => {
            eprintln!("campaign worker panicked on job {i} ({job:?}) with a non-string payload");
            resume_unwind(payload)
        }
    }
}

/// Wall-clock and kernel-throughput counters for a completed campaign.
///
/// Excluded from campaign *reports* by design: reports must stay
/// byte-identical across thread counts and machines, while these
/// counters exist precisely to track machine-dependent throughput
/// (BENCH_*.json trajectories).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CampaignStats {
    /// Simulation runs executed (including the nominal reference).
    pub runs: usize,
    /// Worker threads actually used — the requested count after the
    /// [`effective_threads`] available-parallelism cap (and the job
    /// count, when there are fewer jobs than workers).
    pub threads: usize,
    /// Wall-clock seconds for the whole campaign.
    pub wall_seconds: f64,
    /// Kernel events fired, summed over every run.
    pub events_fired: u64,
    /// Component wakes delivered, summed over every run.
    pub wakes: u64,
}

impl CampaignStats {
    /// Aggregate kernel throughput: events fired per wall-clock second.
    pub fn events_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.events_fired as f64 / self.wall_seconds
    }
}

impl fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs on {} thread(s): {:.2}s wall, {} events ({:.2} M events/s), {} wakes",
            self.runs,
            self.threads,
            self.wall_seconds,
            self.events_fired,
            self.events_per_second() / 1e6,
            self.wakes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [`run_jobs`] shape over the *uncapped* fan-out engine: the
    /// public entry clamps to the machine's core count, which on a
    /// one-core CI host would silently reduce every multi-thread test
    /// below to the sequential path.
    fn fanned<T, R, F>(jobs: &[T], threads: usize, worker: F) -> Vec<R>
    where
        T: Sync + fmt::Debug,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        run_jobs_fanned(jobs, threads, RunHooks::default(), worker)
            .unwrap_or_else(|_| unreachable!("no cancel token was installed"))
    }

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<u64> = (0..257).collect();
        let f = |i: usize, j: &u64| -> u64 {
            // Deterministic result, jittered runtime so completion order
            // differs from job order.
            if i.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            j.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13)
        };
        let sequential = run_jobs(&jobs, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(fanned(&jobs, threads, f), sequential, "{threads} threads");
        }
    }

    #[test]
    fn run_jobs_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_jobs(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(run_jobs(&[9u32], 4, |i, x| (i, *x)), vec![(0, 9)]);
    }

    #[test]
    fn worker_panic_reports_failing_job() {
        // The panic must carry the job's index and identity (the
        // config/seed in a real campaign), at every thread count.
        let jobs: Vec<u64> = (0..20).map(|i| 0x5EED ^ i).collect();
        for threads in [1, 4] {
            let jobs = &jobs;
            let caught = catch_unwind(AssertUnwindSafe(|| {
                fanned(jobs, threads, |i, j: &u64| {
                    if i == 13 {
                        panic!("bad seed {j:#x}");
                    }
                    *j
                })
            }))
            .expect_err("the worker panic must propagate");
            let msg = caught
                .downcast_ref::<String>()
                .expect("annotated panics carry a String payload");
            assert!(msg.contains("job 13"), "{threads} threads: {msg}");
            assert!(msg.contains("bad seed"), "{threads} threads: {msg}");
            assert!(
                msg.contains(&format!("{:?}", jobs[13])),
                "{threads} threads: {msg}"
            );
        }
    }

    #[test]
    fn stats_compute_throughput() {
        let s = CampaignStats {
            runs: 10,
            threads: 2,
            wall_seconds: 2.0,
            events_fired: 4_000_000,
            wakes: 7,
        };
        assert!((s.events_per_second() - 2e6).abs() < 1e-9);
        let text = s.to_string();
        assert!(text.contains("10 runs"));
        assert!(text.contains("2.00 M events/s"));
        assert_eq!(CampaignStats::default().events_per_second(), 0.0);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn effective_threads_caps_at_available_parallelism() {
        let cores = thread::available_parallelism().map_or(1, usize::from);
        assert_eq!(effective_threads(0), 1, "zero requests clamp to one");
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(usize::MAX), cores);
        assert!(effective_threads(cores + 7) <= cores);
    }

    #[test]
    fn cancellation_stops_promptly_and_reports_partial_state() {
        // The token trips from inside job 5's worker; jobs already
        // finished must come back (in job order), and nothing may start
        // after the token is honoured. Checked sequentially and fanned.
        for threads in [1, 4] {
            let jobs: Vec<u64> = (0..200).collect();
            let token = CancelToken::new();
            let hooks = RunHooks {
                cancel: Some(&token),
                progress: None,
            };
            let err = run_jobs_fanned(&jobs, threads, hooks, |i, j: &u64| {
                if i == 5 {
                    token.cancel();
                }
                *j * 2
            })
            .expect_err("the campaign must report cancellation");
            assert_eq!(err.total, 200, "{threads} threads");
            assert!(
                !err.completed.is_empty() && err.completed.len() < 200,
                "{threads} threads: {} completed",
                err.completed.len()
            );
            // Partial results are job-ordered and correct.
            for w in err.completed.windows(2) {
                assert!(w[0].0 < w[1].0, "{threads} threads: unsorted partial state");
            }
            for (i, r) in &err.completed {
                assert_eq!(*r, jobs[*i] * 2, "{threads} threads");
            }
            assert!(err.to_string().contains("of 200 jobs"));
            // At 1 thread the cut is exact: jobs 0..=5 ran, nothing else.
            if threads == 1 {
                assert_eq!(err.completed.len(), 6);
            }
        }
    }

    #[test]
    fn cancelling_after_completion_still_returns_ok_results() {
        let jobs: Vec<u64> = (0..8).collect();
        let token = CancelToken::new();
        let hooks = RunHooks {
            cancel: Some(&token),
            progress: None,
        };
        let last = jobs.len() - 1;
        let out = run_jobs_fanned(&jobs, 4, hooks, |i, j: &u64| {
            if i == last {
                token.cancel(); // too late: every job already claimed
            }
            *j
        });
        // Either every job completed (Ok) or a worker saw the token
        // between claims (Err with partial state); both are legal, but
        // a full result set must never be reported as cancelled.
        if let Err(c) = out {
            assert!(c.completed.len() < jobs.len());
        }
    }

    #[test]
    fn progress_reports_every_completion() {
        use std::sync::Mutex;
        for threads in [1, 3] {
            let jobs: Vec<u64> = (0..50).collect();
            let seen = Mutex::new(Vec::new());
            let progress = |done: usize, total: usize| {
                seen.lock().unwrap().push((done, total));
            };
            let hooks = RunHooks {
                cancel: None,
                progress: Some(&progress),
            };
            let out = run_jobs_fanned(&jobs, threads, hooks, |_, j: &u64| *j).expect("no token");
            assert_eq!(out, jobs);
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            // Every completion reported exactly once, against the right
            // total (arrival order is unspecified across threads).
            let want: Vec<(usize, usize)> = (1..=50).map(|d| (d, 50)).collect();
            assert_eq!(seen, want, "{threads} threads");
        }
    }

    #[test]
    fn st_threads_zero_clamps_to_one() {
        // One test fn owns all ST_THREADS mutation: parallel test
        // threads must not race on the process environment.
        let prev = std::env::var("ST_THREADS").ok();
        std::env::set_var("ST_THREADS", "0");
        assert_eq!(default_threads(), 1, "ST_THREADS=0 must clamp, not panic");
        std::env::set_var("ST_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("ST_THREADS", "banana");
        assert!(default_threads() >= 1, "garbage falls back to parallelism");
        // The shared helper exposes the same policy to other knobs.
        assert_eq!(threads_from_env("ST_THREADS"), None, "garbage is ignored");
        std::env::set_var("ST_THREADS", " 7 ");
        assert_eq!(threads_from_env("ST_THREADS"), Some(7), "whitespace ok");
        std::env::set_var("ST_THREADS", "0");
        assert_eq!(threads_from_env("ST_THREADS"), Some(1), "zero clamps");
        // Corner inputs all fall through to the caller's default rather
        // than panicking or half-parsing.
        std::env::set_var("ST_THREADS", "");
        assert_eq!(threads_from_env("ST_THREADS"), None, "empty is unset-ish");
        std::env::set_var("ST_THREADS", "   ");
        assert_eq!(threads_from_env("ST_THREADS"), None, "whitespace-only too");
        std::env::set_var("ST_THREADS", "-2");
        assert_eq!(threads_from_env("ST_THREADS"), None, "negative is garbage");
        std::env::set_var("ST_THREADS", "18446744073709551616");
        assert_eq!(threads_from_env("ST_THREADS"), None, "overflow is garbage");
        std::env::set_var("ST_THREADS", "3.5");
        assert_eq!(threads_from_env("ST_THREADS"), None, "floats are garbage");
        match prev {
            Some(v) => std::env::set_var("ST_THREADS", v),
            None => std::env::remove_var("ST_THREADS"),
        }
    }

    #[test]
    fn st_batch_resolves_with_the_shared_clamp_policy() {
        // This test fn owns all ST_BATCH mutation (same single-owner
        // convention as ST_THREADS above).
        let prev = std::env::var("ST_BATCH").ok();
        std::env::remove_var("ST_BATCH");
        assert_eq!(batch_limit_from_env(), DEFAULT_BATCH_LIMIT, "unset");
        std::env::set_var("ST_BATCH", "8");
        assert_eq!(batch_limit_from_env(), 8);
        std::env::set_var("ST_BATCH", " 16 ");
        assert_eq!(batch_limit_from_env(), 16, "whitespace trims");
        std::env::set_var("ST_BATCH", "1");
        assert_eq!(batch_limit_from_env(), 1, "1 disables batching, legal");
        std::env::set_var("ST_BATCH", "0");
        assert_eq!(batch_limit_from_env(), 1, "0 clamps to 1, not default");
        std::env::set_var("ST_BATCH", "");
        assert_eq!(batch_limit_from_env(), DEFAULT_BATCH_LIMIT, "empty");
        std::env::set_var("ST_BATCH", "-1");
        assert_eq!(batch_limit_from_env(), DEFAULT_BATCH_LIMIT, "negative");
        std::env::set_var("ST_BATCH", "18446744073709551616");
        assert_eq!(batch_limit_from_env(), DEFAULT_BATCH_LIMIT, "overflow");
        match prev {
            Some(v) => std::env::set_var("ST_BATCH", v),
            None => std::env::remove_var("ST_BATCH"),
        }
    }
}
