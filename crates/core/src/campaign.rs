//! Deterministic parallel campaign execution.
//!
//! Every experiment harness in this reproduction (the E1 determinism
//! sweep, the E8 scalability study) is a *bag of independent runs*: each
//! run builds its own [`Simulator`](st_sim::prelude::SimBuilder) from a
//! config, runs it to a budget, and reduces to a small result. Per-run
//! determinism is a property of the kernel (single-threaded, seeded);
//! nothing about it requires the *runs* to execute one after another.
//!
//! [`run_jobs`] fans a job list across OS threads with
//! `std::thread::scope` (no external dependencies — the dependency
//! policy in DESIGN.md §7 is unchanged) and merges results back **in
//! canonical job order**, so the output is bit-identical to a sequential
//! map regardless of thread count or completion interleaving. Campaign
//! reports produced through it are therefore byte-identical at 1, 2, or
//! N threads — asserted by the `campaign` integration tests.
//!
//! The worker-thread count comes from, in priority order: an explicit
//! argument, the `ST_THREADS` environment variable, and the machine's
//! available parallelism.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

/// Resolves the worker-thread count for campaign runners.
///
/// `ST_THREADS` (a positive integer) overrides the machine's available
/// parallelism. `ST_THREADS=0` clamps to 1 — the user asked for "as
/// little parallelism as possible", and handing 0 to a runner would be
/// an invalid thread count — while an unparsable value falls back to
/// available parallelism. Both emit a one-time stderr warning naming
/// the rejected value: a silently ignored knob is worse than a noisy
/// one.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ST_THREADS") {
        static WARNED: std::sync::Once = std::sync::Once::new();
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            Ok(_) => {
                WARNED.call_once(|| {
                    eprintln!("warning: clamping ST_THREADS=0 to 1 (want a positive integer)");
                });
                return 1;
            }
            Err(_) => {
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring ST_THREADS={v:?} (want a positive integer); \
                         falling back to available parallelism"
                    );
                });
            }
        }
    }
    thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `worker` over every job, fanned across up to `threads` OS
/// threads, returning results **in job order**.
///
/// Work is claimed from a shared atomic cursor, so long and short jobs
/// balance across workers; each worker buffers `(index, result)` pairs
/// and the merge reorders them canonically. The returned `Vec` is
/// bit-identical to `jobs.iter().enumerate().map(worker).collect()` for
/// any pure `worker`, at any thread count.
///
/// # Panics
///
/// A panicking worker aborts the campaign: remaining workers stop
/// claiming jobs, and the panic is re-raised on the calling thread
/// annotated with the failing job's index and `Debug` rendering (which
/// for campaign jobs carries the configuration/seed that crashed). When
/// several workers panic concurrently, the lowest failing job index is
/// reported, so the message is deterministic.
pub fn run_jobs<T, R, F>(jobs: &[T], threads: usize, worker: F) -> Vec<R>
where
    T: Sync + fmt::Debug,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads == 1 {
        return jobs
            .iter()
            .enumerate()
            .map(
                |(i, job)| match catch_unwind(AssertUnwindSafe(|| worker(i, job))) {
                    Ok(r) => r,
                    Err(payload) => rethrow(i, job, payload),
                },
            )
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    type Fail = (usize, Box<dyn std::any::Any + Send>);
    let buckets: Vec<Result<Vec<(usize, R)>, Fail>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| worker(i, &jobs[i]))) {
                            Ok(r) => out.push((i, r)),
                            Err(payload) => {
                                failed.store(true, Ordering::Relaxed);
                                return Err((i, payload));
                            }
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker thread died outside a job"))
            .collect()
    });
    if failed.load(Ordering::Relaxed) {
        let (i, payload) = buckets
            .into_iter()
            .filter_map(Result::err)
            .min_by_key(|(i, _)| *i)
            .expect("a failure was flagged");
        rethrow(i, &jobs[i], payload);
    }
    let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten().flatten() {
        debug_assert!(slots[i].is_none(), "job {i} executed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every job executed exactly once"))
        .collect()
}

/// Re-raises a caught worker panic annotated with the failing job. A
/// string payload is folded into the new message; any other payload is
/// resumed as-is after printing the job context to stderr (so the
/// original typed payload — e.g. from `panic_any` — is preserved for
/// callers that downcast it).
fn rethrow<T: fmt::Debug>(i: usize, job: &T, payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = payload
        .downcast_ref::<&'static str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned());
    match msg {
        Some(m) => panic!("campaign worker panicked on job {i} ({job:?}): {m}"),
        None => {
            eprintln!("campaign worker panicked on job {i} ({job:?}) with a non-string payload");
            resume_unwind(payload)
        }
    }
}

/// Wall-clock and kernel-throughput counters for a completed campaign.
///
/// Excluded from campaign *reports* by design: reports must stay
/// byte-identical across thread counts and machines, while these
/// counters exist precisely to track machine-dependent throughput
/// (BENCH_*.json trajectories).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CampaignStats {
    /// Simulation runs executed (including the nominal reference).
    pub runs: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole campaign.
    pub wall_seconds: f64,
    /// Kernel events fired, summed over every run.
    pub events_fired: u64,
    /// Component wakes delivered, summed over every run.
    pub wakes: u64,
}

impl CampaignStats {
    /// Aggregate kernel throughput: events fired per wall-clock second.
    pub fn events_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.events_fired as f64 / self.wall_seconds
    }
}

impl fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs on {} thread(s): {:.2}s wall, {} events ({:.2} M events/s), {} wakes",
            self.runs,
            self.threads,
            self.wall_seconds,
            self.events_fired,
            self.events_per_second() / 1e6,
            self.wakes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_jobs_preserves_job_order() {
        let jobs: Vec<u64> = (0..257).collect();
        let f = |i: usize, j: &u64| -> u64 {
            // Deterministic result, jittered runtime so completion order
            // differs from job order.
            if i.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            j.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13)
        };
        let sequential = run_jobs(&jobs, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(run_jobs(&jobs, threads, f), sequential, "{threads} threads");
        }
    }

    #[test]
    fn run_jobs_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_jobs(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(run_jobs(&[9u32], 4, |i, x| (i, *x)), vec![(0, 9)]);
    }

    #[test]
    fn worker_panic_reports_failing_job() {
        // The panic must carry the job's index and identity (the
        // config/seed in a real campaign), at every thread count.
        let jobs: Vec<u64> = (0..20).map(|i| 0x5EED ^ i).collect();
        for threads in [1, 4] {
            let jobs = &jobs;
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_jobs(jobs, threads, |i, j: &u64| {
                    if i == 13 {
                        panic!("bad seed {j:#x}");
                    }
                    *j
                })
            }))
            .expect_err("the worker panic must propagate");
            let msg = caught
                .downcast_ref::<String>()
                .expect("annotated panics carry a String payload");
            assert!(msg.contains("job 13"), "{threads} threads: {msg}");
            assert!(msg.contains("bad seed"), "{threads} threads: {msg}");
            assert!(
                msg.contains(&format!("{:?}", jobs[13])),
                "{threads} threads: {msg}"
            );
        }
    }

    #[test]
    fn stats_compute_throughput() {
        let s = CampaignStats {
            runs: 10,
            threads: 2,
            wall_seconds: 2.0,
            events_fired: 4_000_000,
            wakes: 7,
        };
        assert!((s.events_per_second() - 2e6).abs() < 1e-9);
        let text = s.to_string();
        assert!(text.contains("10 runs"));
        assert!(text.contains("2.00 M events/s"));
        assert_eq!(CampaignStats::default().events_per_second(), 0.0);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn st_threads_zero_clamps_to_one() {
        // One test fn owns all ST_THREADS mutation: parallel test
        // threads must not race on the process environment.
        let prev = std::env::var("ST_THREADS").ok();
        std::env::set_var("ST_THREADS", "0");
        assert_eq!(default_threads(), 1, "ST_THREADS=0 must clamp, not panic");
        std::env::set_var("ST_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("ST_THREADS", "banana");
        assert!(default_threads() >= 1, "garbage falls back to parallelism");
        match prev {
            Some(v) => std::env::set_var("ST_THREADS", v),
            None => std::env::remove_var("ST_THREADS"),
        }
    }
}
