//! The token-ring node state machine (paper Figure 2).
//!
//! A node decides, *by counting local clock cycles alone*, when its SB's
//! interfaces are enabled and when the token departs — it never chooses
//! between an asynchronous event and a clock edge, which is why the system
//! stays deterministic. This module is the pure (kernel-free) FSM; the
//! wrapper in [`crate::wrapper`] wires it to real signals.
//!
//! Mapping to the waveform events annotated A–M in the paper's Figure 2:
//!
//! | Event | Here |
//! |---|---|
//! | A — incoming token arrives | [`NodeFsm::token_arrived`] latching `has_token` |
//! | B — recycle counter reaches zero | `Recycling` branch of [`NodeFsm::on_posedge`] |
//! | C — `sbena` enables the interfaces | [`NodeFsm::interfaces_enabled`] true |
//! | D — hold counter decrements each cycle | `Holding` branch |
//! | E — hold counter presets | `Holding` branch at zero |
//! | F — token is passed | [`PosedgeAction::pass_token`] |
//! | G — SBs disabled | `sbena` false after the pass |
//! | H — recycle counter decrements | `Recycling` branch |
//! | I — `clken` deasserted | [`NodeFsm::clock_enabled`] false |
//! | J — clock synchronously stopped | wrapper + `StoppableClock` |
//! | K — token returns | [`NodeFsm::token_arrived`] while `Stopped` |
//! | L — clock asynchronously restarted | [`TokenAction::RestartClock`] |
//! | M — other nodes keep holding | per-node FSMs, ANDed `clken` |

use crate::spec::NodeParams;
use std::fmt;

/// The node's phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodePhase {
    /// Token held; the node's interfaces are enabled.
    Holding,
    /// Token passed; counting down until it is expected back.
    Recycling,
    /// Recycle count expired with no token: the local clock is stopped.
    Stopped,
}

impl fmt::Display for NodePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodePhase::Holding => write!(f, "holding"),
            NodePhase::Recycling => write!(f, "recycling"),
            NodePhase::Stopped => write!(f, "stopped"),
        }
    }
}

/// What the wrapper must do after a clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PosedgeAction {
    /// Send the token to the peer node now.
    pub pass_token: bool,
    /// The node entered `Stopped`: deassert this node's clock enable.
    pub stop_clock: bool,
}

/// What the wrapper must do when a token arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenAction {
    /// Nothing; the token was latched for later.
    Latched,
    /// The node was `Stopped`: reassert clock enable (asynchronous
    /// restart).
    RestartClock,
}

/// A complete dump of a [`NodeFsm`]'s state, used by checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NodeFsmSnapshot {
    pub params: NodeParams,
    pub phase: NodePhase,
    pub hold_ctr: u32,
    pub recycle_ctr: u32,
    pub has_token: bool,
    pub hold_indefinitely: bool,
    pub passes: u64,
    pub stops: u64,
    pub early_tokens: u64,
}

/// The pure node state machine.
///
/// Call [`on_posedge`](NodeFsm::on_posedge) once per local clock rising
/// edge *before* the SB's interfaces are evaluated for that cycle, and
/// [`token_arrived`](NodeFsm::token_arrived) whenever the ring delivers
/// the token (any wall-clock time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFsm {
    params: NodeParams,
    phase: NodePhase,
    hold_ctr: u32,
    recycle_ctr: u32,
    has_token: bool,
    /// Debug hook (§4.2): while set, a holding node keeps the token
    /// indefinitely — the basis of deterministic breakpoints and
    /// single-stepping.
    hold_indefinitely: bool,
    /// Statistics: tokens passed.
    passes: u64,
    /// Statistics: clock stops caused by this node.
    stops: u64,
    /// Statistics: tokens that arrived early (before the recycle count
    /// expired).
    early_tokens: u64,
}

impl NodeFsm {
    /// A node that starts holding the token (interfaces enabled from the
    /// first cycle).
    pub fn new_holder(params: NodeParams) -> Self {
        NodeFsm {
            params,
            phase: NodePhase::Holding,
            hold_ctr: params.hold,
            recycle_ctr: params.recycle,
            has_token: false,
            hold_indefinitely: false,
            passes: 0,
            stops: 0,
            early_tokens: 0,
        }
    }

    /// A node that starts waiting for the token, with the recycle counter
    /// preset to `initial_recycle` (clamped to at least 1). The preset
    /// sets the *phase* of the node's first recognition; subsequent
    /// rotations use `params.recycle`.
    pub fn new_waiter(params: NodeParams, initial_recycle: u32) -> Self {
        NodeFsm {
            params,
            phase: NodePhase::Recycling,
            hold_ctr: params.hold,
            recycle_ctr: initial_recycle.max(1),
            has_token: false,
            hold_indefinitely: false,
            passes: 0,
            stops: 0,
            early_tokens: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> NodeParams {
        self.params
    }

    /// Rewrites the hold/recycle registers (§4.2: "making the hold,
    /// recycle, and clock frequency registers … accessible through a
    /// scan chain"). Running counters are unaffected; the new values
    /// load at the next preset.
    pub fn set_params(&mut self, params: NodeParams) {
        self.params = params;
    }

    /// Current phase.
    pub fn phase(&self) -> NodePhase {
        self.phase
    }

    /// True while the node's associated interfaces may exchange data
    /// (the `sbena` output, event C).
    pub fn interfaces_enabled(&self) -> bool {
        self.phase == NodePhase::Holding
    }

    /// False when the node demands the local clock be stopped (event I).
    pub fn clock_enabled(&self) -> bool {
        self.phase != NodePhase::Stopped
    }

    /// Tokens passed so far.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Clock stops caused by this node so far.
    pub fn stops(&self) -> u64 {
        self.stops
    }

    /// Tokens that arrived before they were expected.
    pub fn early_tokens(&self) -> u64 {
        self.early_tokens
    }

    /// Sets or clears the §4.2 indefinite-hold debug hook.
    pub fn set_hold_indefinitely(&mut self, on: bool) {
        self.hold_indefinitely = on;
    }

    /// True while the indefinite-hold hook is set.
    pub fn holds_indefinitely(&self) -> bool {
        self.hold_indefinitely
    }

    /// Remaining hold count (for debug displays).
    pub fn hold_ctr(&self) -> u32 {
        self.hold_ctr
    }

    /// Remaining recycle count (for debug displays).
    pub fn recycle_ctr(&self) -> u32 {
        self.recycle_ctr
    }

    /// True while an early token is latched awaiting recycle expiry.
    pub fn has_token_latched(&self) -> bool {
        self.has_token
    }

    /// Advances the FSM by one local clock cycle.
    ///
    /// The returned action tells the wrapper whether to pass the token
    /// and/or deassert its clock enable. The *current* cycle counts as an
    /// enabled cycle iff the node was `Holding` when the edge occurred —
    /// callers must read [`interfaces_enabled`](Self::interfaces_enabled)
    /// *before* calling this. (The wrapper reads it afterwards using the
    /// returned [`PosedgeAction`]; see `wrapper.rs`.)
    ///
    /// # Panics
    ///
    /// Panics if called while `Stopped` — a stopped node's clock does not
    /// tick, so this indicates a wrapper bug.
    pub fn on_posedge(&mut self) -> PosedgeAction {
        let mut action = PosedgeAction::default();
        match self.phase {
            NodePhase::Holding => {
                if self.hold_indefinitely {
                    // §4.2: the token parks here; interfaces stay enabled
                    // and every other node's recycle counter runs out,
                    // deterministically stopping the rest of the system.
                    return action;
                }
                self.hold_ctr -= 1;
                if self.hold_ctr == 0 {
                    // E: preset; F: pass; G: disable.
                    self.hold_ctr = self.params.hold;
                    self.recycle_ctr = self.params.recycle;
                    self.phase = NodePhase::Recycling;
                    self.passes += 1;
                    action.pass_token = true;
                }
            }
            NodePhase::Recycling => {
                // H: decrement.
                self.recycle_ctr -= 1;
                if self.recycle_ctr == 0 {
                    if self.has_token {
                        // A+B satisfied: hold from the next cycle on.
                        self.has_token = false;
                        self.phase = NodePhase::Holding;
                    } else {
                        // I/J: stop the clock.
                        self.phase = NodePhase::Stopped;
                        self.stops += 1;
                        action.stop_clock = true;
                    }
                }
            }
            NodePhase::Stopped => {
                panic!("a stopped node must not receive clock edges");
            }
        }
        action
    }

    /// Fault injection: flips bit `bit % 8` of the running hold counter,
    /// clamping the result to at least 1 so the FSM's non-zero-counter
    /// invariant survives the upset (a real counter would wrap; the clamp
    /// keeps the modelled outcome classifiable instead of UB-like).
    pub fn seu_flip_hold(&mut self, bit: u32) {
        self.hold_ctr = (self.hold_ctr ^ (1 << (bit % 8))).max(1);
    }

    /// Fault injection: flips bit `bit % 8` of the running recycle
    /// counter, clamped to at least 1 (see [`seu_flip_hold`](Self::seu_flip_hold)).
    pub fn seu_flip_recycle(&mut self, bit: u32) {
        self.recycle_ctr = (self.recycle_ctr ^ (1 << (bit % 8))).max(1);
    }

    /// Fault injection: flips the token latch. Setting it conjures a
    /// phantom token (recognized at recycle expiry); clearing it loses a
    /// latched early token, which eventually parks the whole ring.
    pub fn seu_flip_token_latch(&mut self) {
        self.has_token = !self.has_token;
    }

    /// Captures the complete FSM state for checkpointing. `params` is
    /// included because [`set_params`](Self::set_params) can rewrite it
    /// after construction.
    pub(crate) fn snapshot(&self) -> NodeFsmSnapshot {
        NodeFsmSnapshot {
            params: self.params,
            phase: self.phase,
            hold_ctr: self.hold_ctr,
            recycle_ctr: self.recycle_ctr,
            has_token: self.has_token,
            hold_indefinitely: self.hold_indefinitely,
            passes: self.passes,
            stops: self.stops,
            early_tokens: self.early_tokens,
        }
    }

    /// Overwrites the FSM with a snapshot taken via
    /// [`snapshot`](Self::snapshot).
    pub(crate) fn restore(&mut self, snap: &NodeFsmSnapshot) {
        self.params = snap.params;
        self.phase = snap.phase;
        self.hold_ctr = snap.hold_ctr;
        self.recycle_ctr = snap.recycle_ctr;
        self.has_token = snap.has_token;
        self.hold_indefinitely = snap.hold_indefinitely;
        self.passes = snap.passes;
        self.stops = snap.stops;
        self.early_tokens = snap.early_tokens;
    }

    /// Reacts to the token arriving from the ring (event A or K).
    ///
    /// Safe at any wall-clock time; an early token is latched and only
    /// recognized once the recycle counter expires.
    pub fn token_arrived(&mut self) -> TokenAction {
        match self.phase {
            NodePhase::Stopped => {
                // K/L: resume holding; the first post-restart cycle is an
                // enabled cycle — same local-cycle schedule as an on-time
                // token.
                self.phase = NodePhase::Holding;
                self.has_token = false;
                TokenAction::RestartClock
            }
            _ => {
                if self.phase == NodePhase::Recycling && self.recycle_ctr > 0 {
                    self.early_tokens += 1;
                }
                self.has_token = true;
                TokenAction::Latched
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(h: u32, r: u32) -> NodeParams {
        NodeParams::new(h, r)
    }

    /// Runs `n` edges, recording (enabled-this-cycle, action) pairs.
    fn run_edges(fsm: &mut NodeFsm, n: usize) -> Vec<(bool, PosedgeAction)> {
        (0..n)
            .map(|_| {
                let enabled = fsm.interfaces_enabled();
                let action = fsm.on_posedge();
                (enabled, action)
            })
            .collect()
    }

    #[test]
    fn holder_holds_for_hold_cycles_then_passes() {
        let mut fsm = NodeFsm::new_holder(params(3, 5));
        let log = run_edges(&mut fsm, 3);
        assert!(log[0].0 && log[1].0 && log[2].0, "3 enabled cycles");
        assert!(!log[0].1.pass_token && !log[1].1.pass_token);
        assert!(log[2].1.pass_token, "token passes at the 3rd edge");
        assert_eq!(fsm.phase(), NodePhase::Recycling);
        assert_eq!(fsm.hold_ctr(), 3, "hold counter presets immediately");
    }

    #[test]
    fn on_time_token_gives_seamless_schedule() {
        let mut fsm = NodeFsm::new_holder(params(2, 3));
        run_edges(&mut fsm, 2); // passes at edge 2
        assert_eq!(fsm.phase(), NodePhase::Recycling);
        // Token comes back during the recycle window.
        run_edges(&mut fsm, 2); // recycle 3 -> 1
        assert_eq!(fsm.token_arrived(), TokenAction::Latched);
        let log = run_edges(&mut fsm, 1); // recycle hits 0 with token
        assert!(!log[0].0, "the zero-crossing cycle is not enabled");
        assert_eq!(fsm.phase(), NodePhase::Holding);
        let log = run_edges(&mut fsm, 1);
        assert!(log[0].0, "holding resumes the very next cycle");
    }

    #[test]
    fn late_token_stops_then_restarts() {
        let mut fsm = NodeFsm::new_holder(params(2, 2));
        run_edges(&mut fsm, 2); // pass
        let log = run_edges(&mut fsm, 2); // recycle 2 -> 0, no token
        assert!(log[1].1.stop_clock, "stop at recycle exhaustion");
        assert_eq!(fsm.phase(), NodePhase::Stopped);
        assert!(!fsm.clock_enabled());
        assert_eq!(fsm.stops(), 1);
        // K: the token finally arrives.
        assert_eq!(fsm.token_arrived(), TokenAction::RestartClock);
        assert_eq!(fsm.phase(), NodePhase::Holding);
        assert!(fsm.clock_enabled());
        let log = run_edges(&mut fsm, 1);
        assert!(log[0].0, "first post-restart cycle is enabled");
    }

    #[test]
    fn local_cycle_schedule_is_invariant_to_token_lateness() {
        // The determinism core: enabled-cycle indices must be identical
        // whether the token is early, exactly on time, or late.
        let schedule = |arrival_edge: Option<usize>| -> Vec<usize> {
            let mut fsm = NodeFsm::new_holder(params(2, 3));
            let mut enabled_cycles = Vec::new();
            let mut cycle = 0usize;
            let mut edges_since_start = 0usize;
            while cycle < 20 {
                if fsm.phase() == NodePhase::Stopped {
                    // Clock is parked: the token eventually arrives
                    // (wall-clock passes, no local cycles do).
                    assert_eq!(fsm.token_arrived(), TokenAction::RestartClock);
                    continue;
                }
                if let Some(a) = arrival_edge {
                    // Early/on-time arrival at a fixed edge index, each
                    // time the node is recycling.
                    if fsm.phase() == NodePhase::Recycling
                        && edges_since_start % 5 == a
                        && !fsm.has_token
                    {
                        fsm.token_arrived();
                    }
                }
                if fsm.interfaces_enabled() {
                    enabled_cycles.push(cycle);
                }
                fsm.on_posedge();
                cycle += 1;
                edges_since_start += 1;
            }
            enabled_cycles
        };
        let on_time = schedule(Some(4)); // arrives the edge recycle hits 0
        let early = schedule(Some(2));
        let late = schedule(None); // never arrives in-window: always stops
        assert_eq!(on_time, early);
        assert_eq!(on_time, late);
    }

    #[test]
    fn early_tokens_are_counted_not_recognized() {
        let mut fsm = NodeFsm::new_holder(params(1, 4));
        run_edges(&mut fsm, 1); // pass immediately
        fsm.token_arrived(); // way early (recycle = 3 remaining)
        assert_eq!(fsm.early_tokens(), 1);
        assert_eq!(fsm.phase(), NodePhase::Recycling);
        let log = run_edges(&mut fsm, 4);
        assert!(log.iter().all(|(e, _)| !e), "still disabled until expiry");
        assert_eq!(fsm.phase(), NodePhase::Holding);
    }

    #[test]
    fn waiter_counts_down_before_first_hold() {
        let mut fsm = NodeFsm::new_waiter(params(2, 4), 4);
        fsm.token_arrived();
        let log = run_edges(&mut fsm, 4);
        assert!(log.iter().all(|(e, _)| !e));
        assert_eq!(fsm.phase(), NodePhase::Holding);
    }

    #[test]
    #[should_panic(expected = "stopped node")]
    fn posedge_while_stopped_is_a_bug() {
        let mut fsm = NodeFsm::new_holder(params(1, 1));
        fsm.on_posedge(); // pass
        fsm.on_posedge(); // stop
        fsm.on_posedge(); // bug
    }

    #[test]
    fn pass_count_accumulates() {
        let mut fsm = NodeFsm::new_holder(params(1, 1));
        for _ in 0..5 {
            fsm.on_posedge(); // pass
            fsm.token_arrived(); // immediate return
            fsm.on_posedge(); // recycle hits 0 with token -> holding
        }
        assert_eq!(fsm.passes(), 5);
        assert_eq!(fsm.stops(), 0);
    }

    #[test]
    fn seu_flips_are_clamped_and_reversible() {
        let mut fsm = NodeFsm::new_holder(params(1, 4));
        fsm.seu_flip_hold(0); // 1 ^ 1 = 0 -> clamped to 1
        assert_eq!(fsm.hold_ctr(), 1);
        fsm.seu_flip_hold(2);
        assert_eq!(fsm.hold_ctr(), 5);
        fsm.seu_flip_recycle(1); // 4 ^ 2 = 6
        assert_eq!(fsm.recycle_ctr(), 6);
        fsm.seu_flip_recycle(9); // bit 9 % 8 = 1: 6 ^ 2 = 4
        assert_eq!(fsm.recycle_ctr(), 4);
        assert!(!fsm.has_token_latched());
        fsm.seu_flip_token_latch();
        assert!(fsm.has_token_latched());
        fsm.seu_flip_token_latch();
        assert!(!fsm.has_token_latched());
    }

    #[test]
    fn seu_phantom_token_is_recognized_at_expiry() {
        let mut fsm = NodeFsm::new_holder(params(1, 3));
        fsm.on_posedge(); // pass, recycling with recycle=3
        fsm.seu_flip_token_latch(); // phantom token
        run_edges(&mut fsm, 3);
        assert_eq!(fsm.phase(), NodePhase::Holding, "phantom token recognized");
        assert_eq!(fsm.stops(), 0);
    }

    #[test]
    fn phase_display() {
        assert_eq!(NodePhase::Holding.to_string(), "holding");
        assert_eq!(NodePhase::Recycling.to_string(), "recycling");
        assert_eq!(NodePhase::Stopped.to_string(), "stopped");
    }
}
