//! Deadlock analysis and the prevention design rule.
//!
//! §5: "A synchro-tokens system may deadlock if there is a cyclic
//! dependency among a set of SBs in which each has stopped its clock to
//! wait for a late token. Whether or not deadlock occurs is
//! deterministic; thus, no detection or recovery methodology is needed.
//! A set of deadlock-preventing design rules which govern the choice of
//! hold and recycle register values for a given system topology has been
//! formally derived. The details are beyond the scope of this paper."
//!
//! The omitted rules are reconstructed here from first principles:
//!
//! * An SB stopped on ring `r` waits for `r`'s (unique) token. That token
//!   is either in flight (it will arrive and restart the clock) or frozen
//!   inside a peer whose *own* clock is stopped — necessarily by a
//!   *different* ring. Deadlock therefore requires a cycle of SBs
//!   connected by **distinct stall-capable rings**.
//! * A ring cannot stall if its recycle registers satisfy the worst-case
//!   round-trip bound ([`crate::rules::min_recycle_estimate`]).
//! * Hence the prevention rule: the multigraph over SBs whose edges are
//!   the *stall-capable* rings must be acyclic (every connected component
//!   a tree). Making any one ring per cycle stall-free breaks the cycle.

use crate::rules::{min_recycle_estimate, ScaleRange};
use crate::spec::{RingId, SystemSpec};
use std::fmt;

/// Analysis verdict for one system/scale-range combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockAnalysis {
    /// Rings that may stall a clock somewhere in the scale range.
    pub stall_capable: Vec<RingId>,
    /// True when the stall-capable multigraph is acyclic (deadlock
    /// impossible under the reconstruction above).
    pub deadlock_free: bool,
    /// One ring per independent cycle whose recycle registers, if raised
    /// to the stall-free bound, would restore deadlock freedom.
    pub suggested_fixes: Vec<RingId>,
}

impl fmt::Display for DeadlockAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.deadlock_free {
            write!(
                f,
                "deadlock-free ({} stall-capable ring(s), no cycle)",
                self.stall_capable.len()
            )
        } else {
            write!(
                f,
                "deadlock POSSIBLE: stall-capable cycle; raise recycle on {:?}",
                self.suggested_fixes
            )
        }
    }
}

/// True when `ring` can stall a clock somewhere in `scales`: one of its
/// recycle registers is below the worst-case round-trip bound.
pub fn ring_may_stall(spec: &SystemSpec, ring: RingId, scales: ScaleRange) -> bool {
    let r = &spec.rings[ring.0];
    let need_holder = min_recycle_estimate(spec, ring, r.holder, scales);
    let need_peer = min_recycle_estimate(spec, ring, r.peer, scales);
    r.holder_node.recycle < need_holder || r.peer_node.recycle < need_peer
}

/// Union-find over SB indices.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let root = self.find(self.0[x]);
            self.0[x] = root;
        }
        self.0[x]
    }
    /// Returns false if `a` and `b` were already connected (cycle edge).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.0[ra] = rb;
        true
    }
}

/// Analyzes the spec for deadlock potential across `scales`.
pub fn analyze(spec: &SystemSpec, scales: ScaleRange) -> DeadlockAnalysis {
    let stall_capable: Vec<RingId> = (0..spec.rings.len())
        .map(RingId)
        .filter(|r| ring_may_stall(spec, *r, scales))
        .collect();
    // Cycle detection in the stall-capable multigraph: an edge whose
    // endpoints are already connected closes a cycle.
    let mut dsu = Dsu::new(spec.sbs.len());
    let mut cycle_edges = Vec::new();
    for rid in &stall_capable {
        let r = &spec.rings[rid.0];
        if !dsu.union(r.holder.0, r.peer.0) {
            cycle_edges.push(*rid);
        }
    }
    DeadlockAnalysis {
        deadlock_free: cycle_edges.is_empty(),
        suggested_fixes: cycle_edges,
        stall_capable,
    }
}

/// Applies the prevention rule: raises the recycle registers of every
/// suggested ring to the stall-free bound, returning the fixed spec.
pub fn apply_prevention_rule(mut spec: SystemSpec, scales: ScaleRange) -> SystemSpec {
    loop {
        let analysis = analyze(&spec, scales);
        if analysis.deadlock_free {
            return spec;
        }
        for rid in analysis.suggested_fixes {
            let (holder, peer) = {
                let r = &spec.rings[rid.0];
                (r.holder, r.peer)
            };
            spec.rings[rid.0].holder_node.recycle =
                min_recycle_estimate(&spec, rid, holder, scales);
            spec.rings[rid.0].peer_node.recycle = min_recycle_estimate(&spec, rid, peer, scales);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{build_e1, e1_spec, starved_triangle_spec as starved_triangle};
    use crate::spec::{NodeParams, SbId, SystemSpec};
    use crate::system::RunOutcome;
    use st_sim::time::SimDuration;

    #[test]
    fn starved_triangle_flagged_and_deadlocks_in_simulation() {
        let spec = starved_triangle();
        let analysis = analyze(&spec, ScaleRange::NOMINAL);
        assert!(!analysis.deadlock_free, "{analysis}");
        assert_eq!(analysis.stall_capable.len(), 3);
        assert!(!analysis.suggested_fixes.is_empty());
        // And the simulator agrees.
        let mut sys = build_e1(spec, 0, 10);
        let out = sys.run_until_cycles(500, SimDuration::us(500)).unwrap();
        assert!(
            matches!(out, RunOutcome::Deadlock { .. }),
            "expected deadlock, got {out:?}"
        );
    }

    #[test]
    fn deadlock_is_deterministic() {
        // "Whether or not deadlock occurs is deterministic": the stall
        // pattern (which SBs, at which local cycle) repeats exactly.
        let observe = || {
            let mut sys = build_e1(starved_triangle(), 0, 10);
            let out = sys.run_until_cycles(500, SimDuration::us(500)).unwrap();
            let stopped = match out {
                RunOutcome::Deadlock { stopped } => stopped,
                other => panic!("expected deadlock, got {other:?}"),
            };
            let cycles: Vec<u64> = (0..3).map(|i| sys.cycles(SbId(i))).collect();
            (stopped, cycles)
        };
        assert_eq!(observe(), observe());
    }

    #[test]
    fn prevention_rule_fixes_the_triangle() {
        let fixed = apply_prevention_rule(starved_triangle(), ScaleRange::NOMINAL);
        let analysis = analyze(&fixed, ScaleRange::NOMINAL);
        assert!(analysis.deadlock_free, "{analysis}");
        // Simulation completes.
        let mut sys = build_e1(fixed, 0, 10);
        let out = sys.run_until_cycles(300, SimDuration::us(2000)).unwrap();
        assert_eq!(out, RunOutcome::Reached);
    }

    #[test]
    fn calibrated_e1_platform_is_deadlock_free_at_nominal() {
        let analysis = analyze(&e1_spec(), ScaleRange::NOMINAL);
        assert!(
            analysis.deadlock_free,
            "calibrated platform must not deadlock: {analysis}"
        );
    }

    #[test]
    fn single_stalling_ring_is_never_deadlock() {
        let mut s = SystemSpec::default();
        let a = s.add_sb("a", SimDuration::ns(10));
        let b = s.add_sb("b", SimDuration::ns(10));
        let r = s.add_ring(a, b, NodeParams::new(2, 1), SimDuration::us(1));
        s.add_channel(a, b, r, 8, 2, SimDuration::ps(200));
        let analysis = analyze(&s, ScaleRange::NOMINAL);
        assert_eq!(analysis.stall_capable.len(), 1);
        assert!(analysis.deadlock_free, "a tree cannot deadlock");
        // The system stalls (slowly) but always makes progress.
        let mut sys = build_e1(s, 0, 10);
        let out = sys.run_until_cycles(20, SimDuration::us(500)).unwrap();
        assert_eq!(out, RunOutcome::Reached);
    }

    #[test]
    fn display_formats() {
        let free = DeadlockAnalysis {
            stall_capable: vec![],
            deadlock_free: true,
            suggested_fixes: vec![],
        };
        assert!(free.to_string().contains("deadlock-free"));
        let bad = DeadlockAnalysis {
            stall_capable: vec![RingId(0)],
            deadlock_free: false,
            suggested_fixes: vec![RingId(0)],
        };
        assert!(bad.to_string().contains("POSSIBLE"));
    }
}
