//! Design rules for sequence determinism and performance.
//!
//! Synchro-tokens guarantees deterministic I/O sequences only when the
//! design obeys a handful of timing rules (the paper: "care must be taken
//! to prevent a FIFO which has been emptied from asynchronously becoming
//! non-empty …", "data must propagate through the FIFO fast enough …").
//! This module makes those rules checkable over a *range* of delay
//! scalings, which is exactly what the E1 campaign sweeps.
//!
//! Rule inventory (all evaluated at the worst corner of the given scale
//! range):
//!
//! 1. **Settle** — every word pushed during the transmitter's hold window
//!    reaches its resting FIFO stage before the receiver's window can
//!    open: `depth·F ≤ ring delay + T_rx/2`.
//! 2. **PopAdvance** — after a pop, the next word reaches the head within
//!    one receiver cycle: `F ≤ T_rx`.
//! 3. **PushDrain** — the tail stage drains within one transmitter cycle
//!    so `full` never blocks mid-window: `F ≤ T_tx`.
//! 4. **Capacity** — the FIFO can absorb a whole hold window:
//!    `depth ≥ hold` of the transmitter-side node.
//!
//! Separately, [`min_recycle_estimate`] gives the analytic lower bound on
//! a recycle register that avoids clock stalls (a *performance* concern —
//! determinism holds even when clocks stall).

use crate::spec::{ChannelId, RingId, SbId, SystemSpec};
use st_sim::time::SimDuration;
use std::fmt;

/// A delay-scaling corner, in percent of nominal (100 = nominal).
///
/// The E1 campaign sweeps {50, 75, 100, 150, 200} %; rules are checked at
/// the worst corner of the whole range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleRange {
    /// Smallest percentage any delay may take.
    pub min_pct: u64,
    /// Largest percentage any delay may take.
    pub max_pct: u64,
}

impl ScaleRange {
    /// The identity range (everything stays nominal).
    pub const NOMINAL: ScaleRange = ScaleRange {
        min_pct: 100,
        max_pct: 100,
    };

    /// The paper's sweep: 50 % to 200 % of nominal.
    pub const PAPER_SWEEP: ScaleRange = ScaleRange {
        min_pct: 50,
        max_pct: 200,
    };

    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `min_pct` is zero or exceeds `max_pct`.
    pub fn new(min_pct: u64, max_pct: u64) -> Self {
        assert!(min_pct > 0, "scale must be positive");
        assert!(min_pct <= max_pct, "scale range must be ordered");
        ScaleRange { min_pct, max_pct }
    }
}

/// Which rule a violation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// In-flight words must settle before the receiver window opens.
    Settle,
    /// Head refill must complete within one receiver cycle.
    PopAdvance,
    /// Tail drain must complete within one transmitter cycle.
    PushDrain,
    /// The FIFO must hold a full transmit window.
    Capacity,
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleKind::Settle => "settle",
            RuleKind::PopAdvance => "pop-advance",
            RuleKind::PushDrain => "push-drain",
            RuleKind::Capacity => "capacity",
        };
        f.write_str(s)
    }
}

/// One rule violation, with the numbers that broke it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleViolation {
    /// Which rule.
    pub rule: RuleKind,
    /// The channel at fault.
    pub channel: ChannelId,
    /// Human-readable numbers.
    pub detail: String,
}

impl fmt::Display for RuleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rule violated on {}: {}",
            self.rule, self.channel, self.detail
        )
    }
}

/// Checks all determinism rules for every channel at the worst corner of
/// `scales`. An empty result means the system's I/O sequences are
/// invariant under any delay assignment inside the range (the E1
/// property).
pub fn check_determinism_rules(spec: &SystemSpec, scales: ScaleRange) -> Vec<RuleViolation> {
    let mut violations = Vec::new();
    for (cid, ch) in spec.channels.iter().enumerate() {
        let cid = ChannelId(cid);
        let ring = &spec.rings[ch.ring.0];
        let t_tx_min = spec.sbs[ch.from.0].period.percent(scales.min_pct);
        let t_rx_min = spec.sbs[ch.to.0].period.percent(scales.min_pct);
        let f_max = ch.stage_delay.percent(scales.max_pct);
        // Ring delay toward the receiver, at its minimum.
        let ring_delay_min = if ring.holder == ch.from {
            ring.delay_fwd
        } else {
            ring.delay_back
        }
        .percent(scales.min_pct);

        // Rule 1: Settle.
        let settle_budget = ring_delay_min + t_rx_min / 2;
        let settle_need = f_max * ch.fifo_depth as u64;
        if settle_need > settle_budget {
            violations.push(RuleViolation {
                rule: RuleKind::Settle,
                channel: cid,
                detail: format!(
                    "depth·F = {settle_need} exceeds ring delay + T_rx/2 = {settle_budget}"
                ),
            });
        }
        // Rule 2: PopAdvance.
        if f_max > t_rx_min {
            violations.push(RuleViolation {
                rule: RuleKind::PopAdvance,
                channel: cid,
                detail: format!("F = {f_max} exceeds receiver period {t_rx_min}"),
            });
        }
        // Rule 3: PushDrain.
        if f_max > t_tx_min {
            violations.push(RuleViolation {
                rule: RuleKind::PushDrain,
                channel: cid,
                detail: format!("F = {f_max} exceeds transmitter period {t_tx_min}"),
            });
        }
        // Rule 4: Capacity.
        let tx_hold = if ring.holder == ch.from {
            ring.holder_node.hold
        } else {
            ring.peer_node.hold
        };
        if (ch.fifo_depth as u64) < u64::from(tx_hold) {
            violations.push(RuleViolation {
                rule: RuleKind::Capacity,
                channel: cid,
                detail: format!(
                    "depth {} below transmit hold window {}",
                    ch.fifo_depth, tx_hold
                ),
            });
        }
    }
    violations
}

/// Analytic lower bound on the recycle register of the node inside `sb`
/// on `ring`, such that the local clock never stalls at the worst corner
/// of `scales`: the token's round trip away from this node takes at most
/// `D_out + (H_peer + 2)·T_peer + D_in`, measured in this node's
/// (fastest) cycles. The `+2` covers recognition-phase misalignment at
/// the peer.
///
/// # Panics
///
/// Panics if `sb` has no node on `ring`.
pub fn min_recycle_estimate(
    spec: &SystemSpec,
    ring_id: RingId,
    sb: SbId,
    scales: ScaleRange,
) -> u32 {
    let ring = &spec.rings[ring_id.0];
    let (peer, d_out, d_in, peer_hold) = if ring.holder == sb {
        (
            ring.peer,
            ring.delay_fwd,
            ring.delay_back,
            ring.peer_node.hold,
        )
    } else if ring.peer == sb {
        (
            ring.holder,
            ring.delay_back,
            ring.delay_fwd,
            ring.holder_node.hold,
        )
    } else {
        panic!("{sb} has no node on {ring_id}");
    };
    let t_self_min = spec.sbs[sb.0].period.percent(scales.min_pct);
    let t_peer_max = spec.sbs[peer.0].period.percent(scales.max_pct);
    let away = d_out.percent(scales.max_pct)
        + t_peer_max * (u64::from(peer_hold) + 2)
        + d_in.percent(scales.max_pct);
    // Ceiling division in cycles of the *fastest* local clock.
    let cycles = away.as_fs().div_ceil(t_self_min.as_fs());
    u32::try_from(cycles.max(1)).expect("recycle estimate overflows u32")
}

/// The throughput bound of §5: a synchro-tokens channel moves at most
/// `H/(H+R)` words per local cycle.
pub fn synchro_throughput_bound(hold: u32, recycle: u32) -> f64 {
    f64::from(hold) / f64::from(hold + recycle)
}

/// Closed-form Eq. (2):
/// `L_SYNCHRO = T·(R+H+1)/2 + F·H + T·(H+1)/2`.
pub fn synchro_latency_model(
    period: SimDuration,
    stage_delay: SimDuration,
    hold: u32,
    recycle: u32,
) -> SimDuration {
    let h = u64::from(hold);
    let r = u64::from(recycle);
    period * (r + h + 1) / 2 + stage_delay * h + period * (h + 1) / 2
}

/// The channel-width factor `(H+R)/H` needed to match STARI throughput
/// (the paper's area/performance trade-off).
pub fn width_compensation_factor(hold: u32, recycle: u32) -> f64 {
    f64::from(hold + recycle) / f64::from(hold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeParams;

    fn spec(period_a: u64, period_b: u64, f: u64, depth: usize, ring_d: u64) -> SystemSpec {
        let mut s = SystemSpec::default();
        let a = s.add_sb("a", SimDuration::ns(period_a));
        let b = s.add_sb("b", SimDuration::ns(period_b));
        let r = s.add_ring(a, b, NodeParams::new(4, 8), SimDuration::ns(ring_d));
        s.add_channel(a, b, r, 16, depth, SimDuration::ns(f));
        s
    }

    #[test]
    fn comfortable_margins_pass_the_paper_sweep() {
        // F=200ps, depth 4 -> settle need 1.6ns max; ring 20ns min 10ns.
        let mut s = spec(10, 12, 1, 4, 20);
        s.channels[0].stage_delay = SimDuration::ps(200);
        assert!(check_determinism_rules(&s, ScaleRange::PAPER_SWEEP).is_empty());
    }

    #[test]
    fn slow_fifo_breaks_settle() {
        // depth·F = 4 * 10ns * 2 = 80ns >> ring 1ns/2 + 5ns/2.
        let s = spec(10, 10, 10, 4, 1);
        let v = check_determinism_rules(&s, ScaleRange::PAPER_SWEEP);
        assert!(v.iter().any(|v| v.rule == RuleKind::Settle));
        assert!(v.iter().any(|v| v.rule == RuleKind::PopAdvance));
        assert!(v.iter().any(|v| v.rule == RuleKind::PushDrain));
    }

    #[test]
    fn shallow_fifo_breaks_capacity() {
        let s = spec(10, 10, 1, 2, 50); // depth 2 < hold 4
        let v = check_determinism_rules(&s, ScaleRange::NOMINAL);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleKind::Capacity);
        assert!(v[0].to_string().contains("capacity"));
    }

    #[test]
    fn recycle_estimate_covers_round_trip() {
        let s = spec(10, 10, 1, 4, 5);
        let r = min_recycle_estimate(&s, RingId(0), SbId(0), ScaleRange::NOMINAL);
        // away = 5 + (4+2)*10 + 5 = 70ns; T=10ns -> 7 cycles.
        assert_eq!(r, 7);
        // Under the paper sweep the worst corner stretches the trip and
        // shrinks the local period.
        let r_sweep = min_recycle_estimate(&s, RingId(0), SbId(0), ScaleRange::PAPER_SWEEP);
        assert!(r_sweep > r);
    }

    #[test]
    #[should_panic(expected = "has no node")]
    fn recycle_estimate_rejects_foreign_sb() {
        let mut s = spec(10, 10, 1, 4, 5);
        let c = s.add_sb("c", SimDuration::ns(10));
        let _ = min_recycle_estimate(&s, RingId(0), c, ScaleRange::NOMINAL);
    }

    #[test]
    fn throughput_bound_and_width_factor_are_consistent() {
        let tp = synchro_throughput_bound(4, 8);
        let wf = width_compensation_factor(4, 8);
        assert!(
            (tp * wf - 1.0).abs() < 1e-12,
            "widening restores 1 word/cycle"
        );
        assert!((tp - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn latency_model_matches_hand_computation() {
        // T=10ns, F=2ns, H=4, R=8:
        // 10*(8+4+1)/2 + 2*4 + 10*(4+1)/2 = 65 + 8 + 25 = 98ns.
        let l = synchro_latency_model(SimDuration::ns(10), SimDuration::ns(2), 4, 8);
        assert_eq!(l, SimDuration::ns(98));
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn inverted_scale_range_rejected() {
        let _ = ScaleRange::new(200, 100);
    }
}
