//! The E1 determinism campaign harness.
//!
//! Reproduces the paper's §5 validation: "Scenarios in which one or more
//! of the delays could change to 50 %, 75 %, 150 %, or 200 % of their
//! nominal values were simulated. The data sequences on each SB's I/Os
//! were monitored for the first 100 local clock cycles and compared with
//! the data sequences associated with the nominal delay settings. In all
//! simulations — over 16,000 of them — all data sequences were found to
//! match exactly. However, when the synchro-tokens control logic was
//! bypassed …, the data sequences were observed to be nondeterministic."
//!
//! A [`DelayConfig`] assigns a percentage to every delay knob in a
//! [`SystemSpec`] (per-SB clock period, per-ring per-direction wire
//! delay, per-channel FIFO stage delay). The campaign enumerates
//! one-factor-at-a-time corners exhaustively and fills the remaining
//! budget with seeded random multi-factor configurations, comparing each
//! run's per-SB I/O digests against the nominal run.
//!
//! The configuration list is enumerated *up front* by
//! [`enumerate_configs`], so the campaign is a bag of independent jobs:
//! [`run_campaign_threads`] fans them across worker threads via
//! [`crate::campaign::run_jobs`] and merges in canonical config order,
//! making the report byte-identical to the sequential runner.

use crate::campaign::{effective_threads, run_jobs, CampaignStats};
use crate::compiled_system::AnySystem;
use crate::spec::{SbId, SystemSpec};
use crate::system::{RunOutcome, System};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_sim::time::SimDuration;
use std::fmt;
use std::fmt::Write as _;

/// The paper's delay multipliers, in percent.
pub const PAPER_SCALES: [u64; 5] = [50, 75, 100, 150, 200];

/// A complete assignment of delay scalings to a system's knobs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DelayConfig {
    /// Percentage per SB clock period.
    pub clock_pct: Vec<u64>,
    /// Percentage per ring: `(forward, back)` wire delays.
    pub ring_pct: Vec<(u64, u64)>,
    /// Percentage per channel FIFO stage delay.
    pub fifo_pct: Vec<u64>,
}

impl DelayConfig {
    /// The all-nominal configuration for `spec`.
    pub fn nominal(spec: &SystemSpec) -> Self {
        DelayConfig {
            clock_pct: vec![100; spec.sbs.len()],
            ring_pct: vec![(100, 100); spec.rings.len()],
            fifo_pct: vec![100; spec.channels.len()],
        }
    }

    /// Number of independently scalable delay knobs.
    pub fn knobs(&self) -> usize {
        self.clock_pct.len() + 2 * self.ring_pct.len() + self.fifo_pct.len()
    }

    /// Sets knob `k` (in the order clocks, ring-fwd/back pairs, FIFOs).
    pub fn set_knob(&mut self, k: usize, pct: u64) {
        let nc = self.clock_pct.len();
        let nr = self.ring_pct.len();
        if k < nc {
            self.clock_pct[k] = pct;
        } else if k < nc + 2 * nr {
            let r = (k - nc) / 2;
            if (k - nc).is_multiple_of(2) {
                self.ring_pct[r].0 = pct;
            } else {
                self.ring_pct[r].1 = pct;
            }
        } else {
            self.fifo_pct[k - nc - 2 * nr] = pct;
        }
    }

    /// Applies the scalings to a copy of `spec`.
    pub fn apply(&self, spec: &SystemSpec) -> SystemSpec {
        let mut s = spec.clone();
        for (sb, pct) in s.sbs.iter_mut().zip(&self.clock_pct) {
            sb.period = sb.period.percent(*pct);
        }
        for (ring, (fwd, back)) in s.rings.iter_mut().zip(&self.ring_pct) {
            ring.delay_fwd = ring.delay_fwd.percent(*fwd);
            ring.delay_back = ring.delay_back.percent(*back);
        }
        for (ch, pct) in s.channels.iter_mut().zip(&self.fifo_pct) {
            ch.stage_delay = ch.stage_delay.percent(*pct);
        }
        s
    }

    /// A deterministic 64-bit fingerprint (used to seed bypass-mode
    /// metastability per configuration, mirroring how real silicon's
    /// resolution depends on its analog operating point).
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Multipliers to draw from (default: the paper's five).
    pub scales: Vec<u64>,
    /// Local cycles to compare per SB (paper: 100).
    pub compare_cycles: u64,
    /// Total number of non-nominal runs (paper: > 16,000).
    pub runs: usize,
    /// Seed for the random configuration sampler.
    pub seed: u64,
    /// Build the bypassed (nondeterministic baseline) system instead.
    pub bypass: bool,
    /// Simulated-time budget per run.
    pub max_time: SimDuration,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            scales: PAPER_SCALES.to_vec(),
            compare_cycles: 100,
            runs: 200,
            seed: 0xE1,
            bypass: false,
            max_time: SimDuration::us(3000),
        }
    }
}

/// One run's comparison against nominal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunComparison {
    /// The configuration exercised.
    pub config: DelayConfig,
    /// Whether every SB's first `compare_cycles` I/O rows matched nominal.
    pub matched: bool,
    /// First divergent cycle per SB (`None` = no divergence).
    pub divergences: Vec<Option<u64>>,
    /// Whether the run completed (`false` = deadlock/timeout).
    pub completed: bool,
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Total non-nominal runs executed.
    pub total: usize,
    /// Runs whose sequences matched nominal exactly.
    pub matches: usize,
    /// Details of every mismatching run (kept small on a passing
    /// campaign).
    pub mismatches: Vec<RunComparison>,
    /// Runs that failed to complete.
    pub incomplete: usize,
}

impl CampaignResult {
    /// True when every completed run matched.
    pub fn all_match(&self) -> bool {
        self.mismatches.is_empty() && self.incomplete == 0
    }

    /// Fraction of runs that matched nominal.
    pub fn match_rate(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.matches as f64 / self.total as f64
    }

    /// Canonical textual report of the campaign outcome.
    ///
    /// A pure function of the run results — no wall-clock times, thread
    /// counts or machine-dependent data — so sequential and parallel
    /// campaigns over the same configuration list produce byte-identical
    /// reports (asserted by the `campaign` integration tests).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{self}");
        for m in &self.mismatches {
            let _ = writeln!(
                out,
                "mismatch (completed={}) divergences={:?} clock={:?} ring={:?} fifo={:?}",
                m.completed,
                m.divergences,
                m.config.clock_pct,
                m.config.ring_pct,
                m.config.fifo_pct,
            );
        }
        out
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs: {} matched nominal ({:.2} %), {} mismatched, {} incomplete",
            self.total,
            self.matches,
            100.0 * self.match_rate(),
            self.mismatches.len(),
            self.incomplete
        )
    }
}

/// A function that builds a ready-to-run system from a (scaled) spec and
/// a seed. See [`crate::scenarios::build_e1`] / `build_e1_bypass`.
///
/// `Sync` because campaign workers on different threads share one build
/// function; each call still builds a fully independent [`System`].
pub type BuildFn<'a> = dyn Fn(SystemSpec, u64) -> System + Sync + 'a;

/// Backend-polymorphic build function: returns an [`AnySystem`], so a
/// campaign can run on the compiled fast path (see
/// [`crate::scenarios::build_e1_backend`]). [`BuildFn`] campaigns are
/// forwarded through this with the event backend.
pub type AnyBuildFn<'a> = dyn Fn(SystemSpec, u64) -> AnySystem + Sync + 'a;

/// Enumerates the campaign's configuration list in canonical order:
/// exhaustive one-factor-at-a-time corners first, then seeded random
/// multi-factor configurations, `cfg.runs` entries in total.
///
/// Pure function of `(base, cfg)` — the list (and its order) is what
/// makes sequential and parallel campaigns comparable byte-for-byte.
pub fn enumerate_configs(base: &SystemSpec, cfg: &CampaignConfig) -> Vec<DelayConfig> {
    let knobs = DelayConfig::nominal(base).knobs();
    let mut configs = Vec::with_capacity(cfg.runs);
    'outer: for k in 0..knobs {
        for &pct in &cfg.scales {
            if pct == 100 {
                continue;
            }
            if configs.len() >= cfg.runs {
                break 'outer;
            }
            let mut c = DelayConfig::nominal(base);
            c.set_knob(k, pct);
            configs.push(c);
        }
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    while configs.len() < cfg.runs {
        let mut c = DelayConfig::nominal(base);
        for k in 0..knobs {
            let pct = cfg.scales[rng.gen_range(0..cfg.scales.len())];
            c.set_knob(k, pct);
        }
        configs.push(c);
    }
    configs
}

/// Runs one configuration and returns its per-SB traces' comparison with
/// the supplied nominal digests, plus the run's kernel counters
/// `(events fired, wakes delivered)`.
fn run_one(
    base: &SystemSpec,
    config: &DelayConfig,
    cfg: &CampaignConfig,
    build: &AnyBuildFn<'_>,
    nominal: &[crate::iotrace::SbIoTrace],
) -> (RunComparison, u64, u64) {
    let spec = config.apply(base);
    let seed = if cfg.bypass { config.fingerprint() } else { 0 };
    let mut sys = build(spec, seed);
    let outcome = sys.run_until_cycles(cfg.compare_cycles, cfg.max_time);
    let completed = matches!(outcome, Ok(RunOutcome::Reached));
    let mut divergences = Vec::with_capacity(base.sbs.len());
    let mut matched = completed;
    for (i, reference) in nominal.iter().enumerate() {
        let trace = sys.io_trace(SbId(i));
        let d = reference.first_divergence(trace);
        if d.is_some() || !trace.matches_for(reference, cfg.compare_cycles as usize) {
            matched = false;
        }
        divergences.push(d);
    }
    let cmp = RunComparison {
        config: config.clone(),
        matched,
        divergences,
        completed,
    };
    (cmp, sys.events_fired(), sys.wakes_delivered())
}

/// Runs the full campaign sequentially: nominal reference, exhaustive
/// one-factor corners, then seeded random multi-factor configurations up
/// to `cfg.runs`. Equivalent to [`run_campaign_threads`] with one thread.
pub fn run_campaign(
    base: &SystemSpec,
    cfg: &CampaignConfig,
    build: &BuildFn<'_>,
) -> CampaignResult {
    run_campaign_threads(base, cfg, build, 1).0
}

/// Runs the full campaign fanned across `threads` worker threads.
///
/// The nominal reference runs first on the calling thread; its I/O
/// digests are then shared read-only with every worker. Each worker
/// builds its own [`System`] per configuration, so per-run determinism is
/// untouched, and results merge in canonical config order — the returned
/// [`CampaignResult`] is **identical** to the sequential runner's at any
/// thread count. [`CampaignStats`] carries the wall-clock and throughput
/// counters, which *are* machine-dependent.
pub fn run_campaign_threads(
    base: &SystemSpec,
    cfg: &CampaignConfig,
    build: &BuildFn<'_>,
    threads: usize,
) -> (CampaignResult, CampaignStats) {
    run_campaign_threads_any(base, cfg, &|s, seed| build(s, seed).into(), threads)
}

/// Backend-polymorphic variant of [`run_campaign_threads`]: the build
/// function chooses the engine per run (typically
/// `SystemBuilder::build_backend` with a fixed [`crate::Backend`]).
/// Because both backends are byte-identical, the [`CampaignResult`] is
/// independent of the backend choice — only the wall-clock in
/// [`CampaignStats`] changes.
pub fn run_campaign_threads_any(
    base: &SystemSpec,
    cfg: &CampaignConfig,
    build: &AnyBuildFn<'_>,
    threads: usize,
) -> (CampaignResult, CampaignStats) {
    let started = std::time::Instant::now();

    // Reference run.
    let nominal_cfg = DelayConfig::nominal(base);
    let seed = if cfg.bypass {
        nominal_cfg.fingerprint()
    } else {
        0
    };
    let mut nominal_sys = build(nominal_cfg.apply(base), seed);
    let outcome = nominal_sys.run_until_cycles(cfg.compare_cycles, cfg.max_time);
    assert!(
        matches!(outcome, Ok(RunOutcome::Reached)),
        "nominal run failed: {outcome:?}"
    );
    let nominal: Vec<_> = (0..base.sbs.len())
        .map(|i| nominal_sys.io_trace(SbId(i)).clone())
        .collect();
    let mut events_fired = nominal_sys.events_fired();
    let mut wakes = nominal_sys.wakes_delivered();
    drop(nominal_sys);

    let configs = enumerate_configs(base, cfg);
    let outcomes = run_jobs(&configs, threads, |_, config| {
        run_one(base, config, cfg, build, &nominal)
    });

    let mut result = CampaignResult::default();
    for (cmp, ev, wk) in outcomes {
        events_fired += ev;
        wakes += wk;
        result.total += 1;
        if !cmp.completed {
            result.incomplete += 1;
        }
        if cmp.matched {
            result.matches += 1;
        } else {
            result.mismatches.push(cmp);
        }
    }
    let stats = CampaignStats {
        runs: result.total + 1,
        threads: effective_threads(threads).clamp(1, configs.len().max(1)),
        wall_seconds: started.elapsed().as_secs_f64(),
        events_fired,
        wakes,
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{SequenceSource, SinkCollect};
    use crate::scenarios::{build_e1, build_e1_bypass, e1_spec, producer_consumer_spec};
    use crate::spec::SbId;
    use crate::system::SystemBuilder;

    #[test]
    fn knob_indexing_covers_every_field() {
        let spec = e1_spec();
        let mut c = DelayConfig::nominal(&spec);
        assert_eq!(c.knobs(), 3 + 6 + 6);
        for k in 0..c.knobs() {
            c.set_knob(k, 50);
        }
        assert!(c.clock_pct.iter().all(|p| *p == 50));
        assert!(c.ring_pct.iter().all(|p| *p == (50, 50)));
        assert!(c.fifo_pct.iter().all(|p| *p == 50));
        let scaled = c.apply(&spec);
        assert_eq!(scaled.sbs[0].period, spec.sbs[0].period.percent(50));
        assert_eq!(
            scaled.rings[1].delay_back,
            spec.rings[1].delay_back.percent(50)
        );
        assert_eq!(
            scaled.channels[5].stage_delay,
            spec.channels[5].stage_delay.percent(50)
        );
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let spec = e1_spec();
        let a = DelayConfig::nominal(&spec);
        let mut b = DelayConfig::nominal(&spec);
        b.set_knob(0, 150);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), DelayConfig::nominal(&spec).fingerprint());
    }

    #[test]
    fn small_synchro_campaign_matches_everywhere() {
        let spec = e1_spec();
        let cfg = CampaignConfig {
            runs: 40,
            compare_cycles: 60,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&spec, &cfg, &|s, seed| build_e1(s, seed, 60));
        assert_eq!(result.total, 40);
        assert!(
            result.all_match(),
            "synchro-tokens must be deterministic: {result}"
        );
    }

    #[test]
    fn small_bypass_campaign_diverges() {
        let spec = e1_spec();
        let cfg = CampaignConfig {
            runs: 30,
            compare_cycles: 60,
            bypass: true,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&spec, &cfg, &|s, seed| build_e1_bypass(s, seed, 60));
        assert!(
            !result.mismatches.is_empty(),
            "bypass mode should be nondeterministic: {result}"
        );
    }

    #[test]
    fn pair_campaign_with_custom_logic() {
        // The harness works for any topology/logic combination.
        let spec = producer_consumer_spec();
        let cfg = CampaignConfig {
            runs: 12,
            compare_cycles: 80,
            ..CampaignConfig::default()
        };
        let build = |s: SystemSpec, _seed: u64| {
            SystemBuilder::new(s)
                .unwrap()
                .with_logic(SbId(0), SequenceSource::new(1, 1))
                .with_logic(SbId(1), SinkCollect::new())
                .with_trace_limit(80)
                .build()
        };
        let result = run_campaign(&spec, &cfg, &build);
        assert!(result.all_match(), "{result}");
    }

    #[test]
    fn config_enumeration_is_deterministic() {
        let spec = e1_spec();
        let cfg = CampaignConfig {
            runs: 70,
            ..CampaignConfig::default()
        };
        let a = enumerate_configs(&spec, &cfg);
        assert_eq!(a.len(), 70, "exactly cfg.runs configs");
        assert_eq!(a, enumerate_configs(&spec, &cfg), "same inputs, same list");
        // One-factor corners come first: 15 knobs × 4 non-nominal scales.
        let nominal = DelayConfig::nominal(&spec);
        let off_nominal_knobs = |c: &DelayConfig| {
            let count = |xs: &[u64]| xs.iter().filter(|p| **p != 100).count();
            count(&c.clock_pct)
                + c.ring_pct
                    .iter()
                    .map(|(f, b)| usize::from(*f != 100) + usize::from(*b != 100))
                    .sum::<usize>()
                + count(&c.fifo_pct)
        };
        assert_eq!(nominal.knobs() * 4, 60);
        assert!(a[..60].iter().all(|c| off_nominal_knobs(c) == 1));
        assert_eq!(a[0].clock_pct[0], 50, "first corner scales the first knob");
    }

    #[test]
    fn threaded_campaign_matches_sequential_result() {
        let spec = e1_spec();
        let cfg = CampaignConfig {
            runs: 10,
            compare_cycles: 40,
            ..CampaignConfig::default()
        };
        let build = |s: SystemSpec, seed: u64| build_e1(s, seed, 40);
        let seq = run_campaign(&spec, &cfg, &build);
        let (par, stats) = run_campaign_threads(&spec, &cfg, &build, 3);
        assert_eq!(seq.report(), par.report());
        assert_eq!(stats.runs, 11, "10 configs + the nominal reference");
        assert!(stats.events_fired > 0);
        assert!(stats.wall_seconds > 0.0);
    }

    #[test]
    fn result_display_reports_rates() {
        let r = CampaignResult {
            total: 10,
            matches: 9,
            mismatches: vec![],
            incomplete: 1,
        };
        let s = r.to_string();
        assert!(s.contains("10 runs"));
        assert!(s.contains("90.00 %"));
        assert!(!r.all_match());
    }
}
