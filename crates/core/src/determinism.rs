//! The E1 determinism campaign harness.
//!
//! Reproduces the paper's §5 validation: "Scenarios in which one or more
//! of the delays could change to 50 %, 75 %, 150 %, or 200 % of their
//! nominal values were simulated. The data sequences on each SB's I/Os
//! were monitored for the first 100 local clock cycles and compared with
//! the data sequences associated with the nominal delay settings. In all
//! simulations — over 16,000 of them — all data sequences were found to
//! match exactly. However, when the synchro-tokens control logic was
//! bypassed …, the data sequences were observed to be nondeterministic."
//!
//! A [`DelayConfig`] assigns a percentage to every delay knob in a
//! [`SystemSpec`] (per-SB clock period, per-ring per-direction wire
//! delay, per-channel FIFO stage delay). The campaign enumerates
//! one-factor-at-a-time corners exhaustively and fills the remaining
//! budget with seeded random multi-factor configurations, comparing each
//! run's per-SB I/O digests against the nominal run.

use crate::spec::{SbId, SystemSpec};
use crate::system::{RunOutcome, System};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_sim::time::SimDuration;
use std::fmt;

/// The paper's delay multipliers, in percent.
pub const PAPER_SCALES: [u64; 5] = [50, 75, 100, 150, 200];

/// A complete assignment of delay scalings to a system's knobs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DelayConfig {
    /// Percentage per SB clock period.
    pub clock_pct: Vec<u64>,
    /// Percentage per ring: `(forward, back)` wire delays.
    pub ring_pct: Vec<(u64, u64)>,
    /// Percentage per channel FIFO stage delay.
    pub fifo_pct: Vec<u64>,
}

impl DelayConfig {
    /// The all-nominal configuration for `spec`.
    pub fn nominal(spec: &SystemSpec) -> Self {
        DelayConfig {
            clock_pct: vec![100; spec.sbs.len()],
            ring_pct: vec![(100, 100); spec.rings.len()],
            fifo_pct: vec![100; spec.channels.len()],
        }
    }

    /// Number of independently scalable delay knobs.
    pub fn knobs(&self) -> usize {
        self.clock_pct.len() + 2 * self.ring_pct.len() + self.fifo_pct.len()
    }

    /// Sets knob `k` (in the order clocks, ring-fwd/back pairs, FIFOs).
    pub fn set_knob(&mut self, k: usize, pct: u64) {
        let nc = self.clock_pct.len();
        let nr = self.ring_pct.len();
        if k < nc {
            self.clock_pct[k] = pct;
        } else if k < nc + 2 * nr {
            let r = (k - nc) / 2;
            if (k - nc).is_multiple_of(2) {
                self.ring_pct[r].0 = pct;
            } else {
                self.ring_pct[r].1 = pct;
            }
        } else {
            self.fifo_pct[k - nc - 2 * nr] = pct;
        }
    }

    /// Applies the scalings to a copy of `spec`.
    pub fn apply(&self, spec: &SystemSpec) -> SystemSpec {
        let mut s = spec.clone();
        for (sb, pct) in s.sbs.iter_mut().zip(&self.clock_pct) {
            sb.period = sb.period.percent(*pct);
        }
        for (ring, (fwd, back)) in s.rings.iter_mut().zip(&self.ring_pct) {
            ring.delay_fwd = ring.delay_fwd.percent(*fwd);
            ring.delay_back = ring.delay_back.percent(*back);
        }
        for (ch, pct) in s.channels.iter_mut().zip(&self.fifo_pct) {
            ch.stage_delay = ch.stage_delay.percent(*pct);
        }
        s
    }

    /// A deterministic 64-bit fingerprint (used to seed bypass-mode
    /// metastability per configuration, mirroring how real silicon's
    /// resolution depends on its analog operating point).
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Multipliers to draw from (default: the paper's five).
    pub scales: Vec<u64>,
    /// Local cycles to compare per SB (paper: 100).
    pub compare_cycles: u64,
    /// Total number of non-nominal runs (paper: > 16,000).
    pub runs: usize,
    /// Seed for the random configuration sampler.
    pub seed: u64,
    /// Build the bypassed (nondeterministic baseline) system instead.
    pub bypass: bool,
    /// Simulated-time budget per run.
    pub max_time: SimDuration,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            scales: PAPER_SCALES.to_vec(),
            compare_cycles: 100,
            runs: 200,
            seed: 0xE1,
            bypass: false,
            max_time: SimDuration::us(3000),
        }
    }
}

/// One run's comparison against nominal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunComparison {
    /// The configuration exercised.
    pub config: DelayConfig,
    /// Whether every SB's first `compare_cycles` I/O rows matched nominal.
    pub matched: bool,
    /// First divergent cycle per SB (`None` = no divergence).
    pub divergences: Vec<Option<u64>>,
    /// Whether the run completed (`false` = deadlock/timeout).
    pub completed: bool,
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Total non-nominal runs executed.
    pub total: usize,
    /// Runs whose sequences matched nominal exactly.
    pub matches: usize,
    /// Details of every mismatching run (kept small on a passing
    /// campaign).
    pub mismatches: Vec<RunComparison>,
    /// Runs that failed to complete.
    pub incomplete: usize,
}

impl CampaignResult {
    /// True when every completed run matched.
    pub fn all_match(&self) -> bool {
        self.mismatches.is_empty() && self.incomplete == 0
    }

    /// Fraction of runs that matched nominal.
    pub fn match_rate(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.matches as f64 / self.total as f64
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs: {} matched nominal ({:.2} %), {} mismatched, {} incomplete",
            self.total,
            self.matches,
            100.0 * self.match_rate(),
            self.mismatches.len(),
            self.incomplete
        )
    }
}

/// A function that builds a ready-to-run system from a (scaled) spec and
/// a seed. See [`crate::scenarios::build_e1`] / `build_e1_bypass`.
pub type BuildFn<'a> = dyn Fn(SystemSpec, u64) -> System + 'a;

/// Runs one configuration and returns its per-SB traces' comparison with
/// the supplied nominal digests.
fn run_one(
    base: &SystemSpec,
    config: &DelayConfig,
    cfg: &CampaignConfig,
    build: &BuildFn<'_>,
    nominal: &[crate::iotrace::SbIoTrace],
) -> RunComparison {
    let spec = config.apply(base);
    let seed = if cfg.bypass { config.fingerprint() } else { 0 };
    let mut sys = build(spec, seed);
    let outcome = sys.run_until_cycles(cfg.compare_cycles, cfg.max_time);
    let completed = matches!(outcome, Ok(RunOutcome::Reached));
    let mut divergences = Vec::with_capacity(base.sbs.len());
    let mut matched = completed;
    for (i, reference) in nominal.iter().enumerate() {
        let trace = sys.io_trace(SbId(i));
        let d = reference.first_divergence(trace);
        if d.is_some() || !trace.matches_for(reference, cfg.compare_cycles as usize) {
            matched = false;
        }
        divergences.push(d);
    }
    RunComparison {
        config: config.clone(),
        matched,
        divergences,
        completed,
    }
}

/// Runs the full campaign: nominal reference, exhaustive one-factor
/// corners, then seeded random multi-factor configurations up to
/// `cfg.runs`.
pub fn run_campaign(base: &SystemSpec, cfg: &CampaignConfig, build: &BuildFn<'_>) -> CampaignResult {
    // Reference run.
    let nominal_cfg = DelayConfig::nominal(base);
    let seed = if cfg.bypass {
        nominal_cfg.fingerprint()
    } else {
        0
    };
    let mut nominal_sys = build(nominal_cfg.apply(base), seed);
    let outcome = nominal_sys.run_until_cycles(cfg.compare_cycles, cfg.max_time);
    assert!(
        matches!(outcome, Ok(RunOutcome::Reached)),
        "nominal run failed: {outcome:?}"
    );
    let nominal: Vec<_> = (0..base.sbs.len())
        .map(|i| nominal_sys.io_trace(SbId(i)).clone())
        .collect();

    let mut result = CampaignResult::default();
    let record = |cmp: RunComparison, result: &mut CampaignResult| {
        result.total += 1;
        if !cmp.completed {
            result.incomplete += 1;
        }
        if cmp.matched {
            result.matches += 1;
        } else {
            result.mismatches.push(cmp);
        }
    };

    // Exhaustive one-factor-at-a-time corners.
    let knobs = nominal_cfg.knobs();
    'outer: for k in 0..knobs {
        for &pct in &cfg.scales {
            if pct == 100 {
                continue;
            }
            if result.total >= cfg.runs {
                break 'outer;
            }
            let mut c = DelayConfig::nominal(base);
            c.set_knob(k, pct);
            let cmp = run_one(base, &c, cfg, build, &nominal);
            record(cmp, &mut result);
        }
    }

    // Random multi-factor configurations.
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    while result.total < cfg.runs {
        let mut c = DelayConfig::nominal(base);
        for k in 0..knobs {
            let pct = cfg.scales[rng.gen_range(0..cfg.scales.len())];
            c.set_knob(k, pct);
        }
        let cmp = run_one(base, &c, cfg, build, &nominal);
        record(cmp, &mut result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{build_e1, build_e1_bypass, e1_spec, producer_consumer_spec};
    use crate::logic::{SequenceSource, SinkCollect};
    use crate::spec::SbId;
    use crate::system::SystemBuilder;

    #[test]
    fn knob_indexing_covers_every_field() {
        let spec = e1_spec();
        let mut c = DelayConfig::nominal(&spec);
        assert_eq!(c.knobs(), 3 + 6 + 6);
        for k in 0..c.knobs() {
            c.set_knob(k, 50);
        }
        assert!(c.clock_pct.iter().all(|p| *p == 50));
        assert!(c.ring_pct.iter().all(|p| *p == (50, 50)));
        assert!(c.fifo_pct.iter().all(|p| *p == 50));
        let scaled = c.apply(&spec);
        assert_eq!(scaled.sbs[0].period, spec.sbs[0].period.percent(50));
        assert_eq!(scaled.rings[1].delay_back, spec.rings[1].delay_back.percent(50));
        assert_eq!(
            scaled.channels[5].stage_delay,
            spec.channels[5].stage_delay.percent(50)
        );
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let spec = e1_spec();
        let a = DelayConfig::nominal(&spec);
        let mut b = DelayConfig::nominal(&spec);
        b.set_knob(0, 150);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), DelayConfig::nominal(&spec).fingerprint());
    }

    #[test]
    fn small_synchro_campaign_matches_everywhere() {
        let spec = e1_spec();
        let cfg = CampaignConfig {
            runs: 40,
            compare_cycles: 60,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&spec, &cfg, &|s, seed| build_e1(s, seed, 60));
        assert_eq!(result.total, 40);
        assert!(
            result.all_match(),
            "synchro-tokens must be deterministic: {result}"
        );
    }

    #[test]
    fn small_bypass_campaign_diverges() {
        let spec = e1_spec();
        let cfg = CampaignConfig {
            runs: 30,
            compare_cycles: 60,
            bypass: true,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&spec, &cfg, &|s, seed| build_e1_bypass(s, seed, 60));
        assert!(
            !result.mismatches.is_empty(),
            "bypass mode should be nondeterministic: {result}"
        );
    }

    #[test]
    fn pair_campaign_with_custom_logic() {
        // The harness works for any topology/logic combination.
        let spec = producer_consumer_spec();
        let cfg = CampaignConfig {
            runs: 12,
            compare_cycles: 80,
            ..CampaignConfig::default()
        };
        let build = |s: SystemSpec, _seed: u64| {
            SystemBuilder::new(s)
                .unwrap()
                .with_logic(SbId(0), SequenceSource::new(1, 1))
                .with_logic(SbId(1), SinkCollect::new())
                .with_trace_limit(80)
                .build()
        };
        let result = run_campaign(&spec, &cfg, &build);
        assert!(result.all_match(), "{result}");
    }

    #[test]
    fn result_display_reports_rates() {
        let r = CampaignResult {
            total: 10,
            matches: 9,
            mismatches: vec![],
            incomplete: 1,
        };
        let s = r.to_string();
        assert!(s.contains("10 runs"));
        assert!(s.contains("90.00 %"));
        assert!(!r.all_match());
    }
}
