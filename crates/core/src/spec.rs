//! System specification: the declarative description of a synchro-tokens
//! GALS system (Figure 1A) — synchronous blocks, token rings, channels —
//! plus validation.
//!
//! Specs are plain data (serde-serializable) so experiment harnesses can
//! sweep them; the synchronous-block *behaviour* is attached separately at
//! build time (see [`crate::system::SystemBuilder`]).

use serde::{Deserialize, Serialize};
use st_sim::time::SimDuration;
use std::fmt;

/// Index of a synchronous block in a [`SystemSpec`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SbId(pub usize);

/// Index of a token ring in a [`SystemSpec`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RingId(pub usize);

/// Index of a channel in a [`SystemSpec`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ChannelId(pub usize);

impl fmt::Display for SbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sb{}", self.0)
    }
}
impl fmt::Display for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring{}", self.0)
    }
}
impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Hold/recycle register values for one token-ring node (Figure 1B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeParams {
    /// Local clock cycles the node holds the token (interfaces enabled).
    pub hold: u32,
    /// Local clock cycles after passing the token before it is expected
    /// back; the clock stops if the token is later than this.
    pub recycle: u32,
}

impl NodeParams {
    /// Creates node parameters.
    ///
    /// # Panics
    ///
    /// Panics if either value is zero (the FSM needs at least one cycle
    /// per phase).
    pub fn new(hold: u32, recycle: u32) -> Self {
        assert!(hold > 0, "hold register must be non-zero");
        assert!(recycle > 0, "recycle register must be non-zero");
        NodeParams { hold, recycle }
    }
}

/// One synchronous block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SbSpec {
    /// Human-readable name, used in signal names and reports.
    pub name: String,
    /// Local clock period (femtoseconds carried inside [`SimDuration`]).
    pub period: SimDuration,
    /// Modelled critical-path delay of the block's logic. Clocking the
    /// block faster than this corrupts its outputs (deterministically),
    /// which is what the §4.2 frequency shmoo goes looking for.
    #[serde(default)]
    pub logic_delay: SimDuration,
}

/// One token ring between a pair of SBs. Exactly one node at each end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingSpec {
    /// The SB whose node initially holds the token.
    pub holder: SbId,
    /// The SB at the other end of the ring.
    pub peer: SbId,
    /// Node parameters on the holder side.
    pub holder_node: NodeParams,
    /// Node parameters on the peer side.
    pub peer_node: NodeParams,
    /// Token propagation delay holder → peer.
    pub delay_fwd: SimDuration,
    /// Token propagation delay peer → holder.
    pub delay_back: SimDuration,
    /// Initial preset of the waiting (peer) node's recycle counter — the
    /// phase knob that aligns its first recognition with the token's
    /// first arrival ("downloadable … directly from the tester").
    /// `None` uses `peer_node.recycle`.
    #[serde(default)]
    pub peer_initial_recycle: Option<u32>,
}

/// Direction-qualified channel endpoint description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Producing SB.
    pub from: SbId,
    /// Consuming SB.
    pub to: SbId,
    /// The token ring whose nodes gate this channel's interfaces. Must
    /// connect `from` and `to`.
    pub ring: RingId,
    /// Bundled-data width in bits (1–64).
    pub bits: u32,
    /// Self-timed FIFO depth in stages (≥ 1).
    pub fifo_depth: usize,
    /// Per-stage forward latency.
    pub stage_delay: SimDuration,
}

/// A complete system description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SystemSpec {
    /// The synchronous blocks.
    pub sbs: Vec<SbSpec>,
    /// The token rings.
    pub rings: Vec<RingSpec>,
    /// The communication channels.
    pub channels: Vec<ChannelSpec>,
}

/// Validation failures for a [`SystemSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// An id referenced a missing element.
    DanglingReference {
        /// What referenced it, e.g. `"ring0.holder"`.
        what: String,
    },
    /// A ring connects an SB to itself.
    SelfRing(RingId),
    /// A channel's ring does not connect the channel's two SBs.
    ChannelRingMismatch(ChannelId),
    /// A numeric field is out of range.
    OutOfRange {
        /// What field, e.g. `"ch0.bits"`.
        what: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DanglingReference { what } => {
                write!(f, "dangling reference in {what}")
            }
            SpecError::SelfRing(r) => write!(f, "{r} connects an SB to itself"),
            SpecError::ChannelRingMismatch(c) => {
                write!(f, "{c} uses a ring that does not connect its endpoints")
            }
            SpecError::OutOfRange { what } => write!(f, "{what} is out of range"),
        }
    }
}

impl std::error::Error for SpecError {}

impl SystemSpec {
    /// Adds an SB and returns its id.
    pub fn add_sb(&mut self, name: &str, period: SimDuration) -> SbId {
        let id = SbId(self.sbs.len());
        self.sbs.push(SbSpec {
            name: name.to_owned(),
            period,
            logic_delay: SimDuration::ZERO,
        });
        id
    }

    /// Adds a symmetric ring (same node params and delay both ways).
    pub fn add_ring(
        &mut self,
        holder: SbId,
        peer: SbId,
        node: NodeParams,
        delay: SimDuration,
    ) -> RingId {
        self.add_ring_asymmetric(holder, peer, node, node, delay, delay)
    }

    /// Adds a ring with per-side node parameters and per-direction delays.
    pub fn add_ring_asymmetric(
        &mut self,
        holder: SbId,
        peer: SbId,
        holder_node: NodeParams,
        peer_node: NodeParams,
        delay_fwd: SimDuration,
        delay_back: SimDuration,
    ) -> RingId {
        let id = RingId(self.rings.len());
        self.rings.push(RingSpec {
            holder,
            peer,
            holder_node,
            peer_node,
            delay_fwd,
            delay_back,
            peer_initial_recycle: None,
        });
        id
    }

    /// Adds a channel bound to `ring`.
    pub fn add_channel(
        &mut self,
        from: SbId,
        to: SbId,
        ring: RingId,
        bits: u32,
        fifo_depth: usize,
        stage_delay: SimDuration,
    ) -> ChannelId {
        let id = ChannelId(self.channels.len());
        self.channels.push(ChannelSpec {
            from,
            to,
            ring,
            bits,
            fifo_depth,
            stage_delay,
        });
        id
    }

    /// Validates all cross-references and ranges.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found.
    pub fn validate(&self) -> Result<(), SpecError> {
        let sb_ok = |id: SbId| id.0 < self.sbs.len();
        for (i, sb) in self.sbs.iter().enumerate() {
            if sb.period.is_zero() {
                return Err(SpecError::OutOfRange {
                    what: format!("sb{i}.period"),
                });
            }
        }
        for (i, r) in self.rings.iter().enumerate() {
            if !sb_ok(r.holder) {
                return Err(SpecError::DanglingReference {
                    what: format!("ring{i}.holder"),
                });
            }
            if !sb_ok(r.peer) {
                return Err(SpecError::DanglingReference {
                    what: format!("ring{i}.peer"),
                });
            }
            if r.holder == r.peer {
                return Err(SpecError::SelfRing(RingId(i)));
            }
            for (side, n) in [("holder", r.holder_node), ("peer", r.peer_node)] {
                if n.hold == 0 || n.recycle == 0 {
                    return Err(SpecError::OutOfRange {
                        what: format!("ring{i}.{side}_node"),
                    });
                }
            }
        }
        for (i, c) in self.channels.iter().enumerate() {
            if !sb_ok(c.from) {
                return Err(SpecError::DanglingReference {
                    what: format!("ch{i}.from"),
                });
            }
            if !sb_ok(c.to) {
                return Err(SpecError::DanglingReference {
                    what: format!("ch{i}.to"),
                });
            }
            let Some(ring) = self.rings.get(c.ring.0) else {
                return Err(SpecError::DanglingReference {
                    what: format!("ch{i}.ring"),
                });
            };
            let ring_ends = (ring.holder, ring.peer);
            let ch_ends = (c.from, c.to);
            let connects = ring_ends == ch_ends || ring_ends == (ch_ends.1, ch_ends.0);
            if !connects {
                return Err(SpecError::ChannelRingMismatch(ChannelId(i)));
            }
            if c.bits == 0 || c.bits > 64 {
                return Err(SpecError::OutOfRange {
                    what: format!("ch{i}.bits"),
                });
            }
            if c.fifo_depth == 0 {
                return Err(SpecError::OutOfRange {
                    what: format!("ch{i}.fifo_depth"),
                });
            }
        }
        Ok(())
    }

    /// Channels consumed by `sb` (its input side).
    pub fn inputs_of(&self, sb: SbId) -> impl Iterator<Item = (ChannelId, &ChannelSpec)> + '_ {
        self.channels
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.to == sb)
            .map(|(i, c)| (ChannelId(i), c))
    }

    /// Channels produced by `sb` (its output side).
    pub fn outputs_of(&self, sb: SbId) -> impl Iterator<Item = (ChannelId, &ChannelSpec)> + '_ {
        self.channels
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.from == sb)
            .map(|(i, c)| (ChannelId(i), c))
    }

    /// Rings that have a node inside `sb`.
    pub fn rings_of(&self, sb: SbId) -> impl Iterator<Item = (RingId, &RingSpec)> + '_ {
        self.rings
            .iter()
            .enumerate()
            .filter(move |(_, r)| r.holder == sb || r.peer == sb)
            .map(|(i, r)| (RingId(i), r))
    }

    /// A human-readable topology dump (the structural reproduction of the
    /// paper's Figure 1A).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "system: {} SBs, {} rings, {} channels",
            self.sbs.len(),
            self.rings.len(),
            self.channels.len()
        );
        for (i, sb) in self.sbs.iter().enumerate() {
            let _ = writeln!(out, "  sb{i} \"{}\" period={}", sb.name, sb.period);
        }
        for (i, r) in self.rings.iter().enumerate() {
            let _ = writeln!(
                out,
                "  ring{i}: {} (H={},R={}) <-> {} (H={},R={}) delays {}/{}",
                r.holder,
                r.holder_node.hold,
                r.holder_node.recycle,
                r.peer,
                r.peer_node.hold,
                r.peer_node.recycle,
                r.delay_fwd,
                r.delay_back
            );
        }
        for (i, c) in self.channels.iter().enumerate() {
            let _ = writeln!(
                out,
                "  ch{i}: {} -> {} on {} ({} bits, depth {}, F={})",
                c.from, c.to, c.ring, c.bits, c.fifo_depth, c.stage_delay
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sb_spec() -> SystemSpec {
        let mut s = SystemSpec::default();
        let a = s.add_sb("a", SimDuration::ns(10));
        let b = s.add_sb("b", SimDuration::ns(12));
        let r = s.add_ring(a, b, NodeParams::new(4, 6), SimDuration::ns(3));
        s.add_channel(a, b, r, 16, 4, SimDuration::ns(1));
        s
    }

    #[test]
    fn valid_spec_passes() {
        assert_eq!(two_sb_spec().validate(), Ok(()));
    }

    #[test]
    fn dangling_sb_detected() {
        let mut s = two_sb_spec();
        s.rings[0].peer = SbId(99);
        assert!(matches!(
            s.validate(),
            Err(SpecError::DanglingReference { .. })
        ));
    }

    #[test]
    fn self_ring_detected() {
        let mut s = two_sb_spec();
        s.rings[0].peer = s.rings[0].holder;
        assert_eq!(s.validate(), Err(SpecError::SelfRing(RingId(0))));
    }

    #[test]
    fn channel_must_use_connecting_ring() {
        let mut s = two_sb_spec();
        let c = s.add_sb("c", SimDuration::ns(9));
        s.channels[0].to = c;
        assert_eq!(
            s.validate(),
            Err(SpecError::ChannelRingMismatch(ChannelId(0)))
        );
    }

    #[test]
    fn reversed_channel_direction_is_fine() {
        let mut s = two_sb_spec();
        // b -> a over the same ring (data flows either way on a ring).
        let (a, b, r) = (SbId(0), SbId(1), RingId(0));
        s.add_channel(b, a, r, 8, 2, SimDuration::ns(1));
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn width_bounds_enforced() {
        let mut s = two_sb_spec();
        s.channels[0].bits = 65;
        assert!(matches!(s.validate(), Err(SpecError::OutOfRange { .. })));
        s.channels[0].bits = 0;
        assert!(matches!(s.validate(), Err(SpecError::OutOfRange { .. })));
    }

    #[test]
    fn zero_period_rejected() {
        let mut s = two_sb_spec();
        s.sbs[0].period = SimDuration::ZERO;
        assert!(matches!(s.validate(), Err(SpecError::OutOfRange { .. })));
    }

    #[test]
    #[should_panic(expected = "hold register must be non-zero")]
    fn zero_hold_panics() {
        let _ = NodeParams::new(0, 1);
    }

    #[test]
    fn iterators_filter_by_sb() {
        let s = two_sb_spec();
        assert_eq!(s.outputs_of(SbId(0)).count(), 1);
        assert_eq!(s.inputs_of(SbId(0)).count(), 0);
        assert_eq!(s.inputs_of(SbId(1)).count(), 1);
        assert_eq!(s.rings_of(SbId(0)).count(), 1);
        assert_eq!(s.rings_of(SbId(1)).count(), 1);
    }

    #[test]
    fn describe_mentions_everything() {
        let d = two_sb_spec().describe();
        assert!(d.contains("sb0"));
        assert!(d.contains("ring0"));
        assert!(d.contains("ch0"));
        assert!(d.contains("16 bits"));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SpecError::SelfRing(RingId(3)).to_string().contains("ring3"));
        assert!(SpecError::ChannelRingMismatch(ChannelId(1))
            .to_string()
            .contains("ch1"));
    }
}
