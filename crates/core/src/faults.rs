//! Deterministic, seedable fault injection — attacking the determinism
//! invariant from every layer.
//!
//! The paper's central claim (§3) is that synchro-tokens make every SB's
//! I/O sequence a pure function of its local cycle count, *invariant
//! under analog variation*: clock phase, jitter, drift, process and wire
//! delay. This module turns that claim into an executable, adversarial
//! oracle. Faults are injected at three layers:
//!
//! * **Analog** ([`AnalogFault`]) — bounded per-edge clock jitter and
//!   drift, token-wire and bundled-data wire-delay perturbation. Applied
//!   through the kernel's [`DelayModel`] hook on the event backend and
//!   mirrored at the equivalent scheduling sites in the compiled engine.
//!   The invariant says these must leave the [`SbIoTrace`] *byte
//!   identical* to the unfaulted golden run.
//! * **Protocol** ([`Fault`]) — token loss/duplication/delay, dropped
//!   req/ack toggles, FIFO stage stalls. These break the protocol's
//!   assumptions, so the oracle only requires a *classified, diagnosable*
//!   outcome: trace-identical, a divergence report with the first
//!   divergent cycle, or a detected deadlock naming the stalled SBs —
//!   never a silent wrong trace, never a hang.
//! * **State** ([`SeuFault`]) — single-event upsets in wrapper/node
//!   state: hold/recycle counter bit flips and token-latch flips,
//!   applied at a chosen local cycle. Same oracle as protocol faults.
//!   (Gate-level SEUs in the bit-parallel engine live in
//!   `st_cells::compiled::CompiledCircuit::inject_seu`.)
//!
//! Every fault draw is a pure hash of `(plan seed, fault class, unit,
//! occurrence index)`, so a [`FaultPlan`] replays bit-exactly on both
//! backends and across processes — fault campaigns are as reproducible
//! as the runs they attack.

use crate::compiled_system::AnySystem;
use crate::iotrace::SbIoTrace;
use crate::spec::{ChannelId, RingId, SbId, SystemSpec};
use crate::system::RunOutcome;
use st_sim::prelude::*;
use std::collections::BTreeMap;
use std::fmt;

/// SplitMix64 finalizer: the one-way mixing function behind every fault
/// draw. Statistically strong enough for bounded jitter draws and cheap
/// enough to call per scheduled event.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fault-draw class tags (also the jitter-unit namespaces).
pub(crate) const CLASS_CLK: u8 = 0;
pub(crate) const CLASS_TOKEN: u8 = 1;
pub(crate) const CLASS_DATA: u8 = 2;

/// Analog-layer perturbations: bounded, always non-negative extra delay
/// on physical wires. Zero bounds disable a term.
///
/// Unit numbering (shared verbatim by both backends so occurrence
/// counters line up): clock unit = SB index; token unit =
/// `ring * 2 + direction` (1 = toward the holder side); data unit =
/// `channel * 2` for requests, `channel * 2 + 1` for acknowledges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalogFault {
    /// Per-rising-edge clock jitter bound (uniform in `[0, bound]`).
    pub clock_jitter: SimDuration,
    /// Per-edge drift increment: edge `n` is additionally late by
    /// `min(n * step, cap)` — a slow, monotone frequency error.
    pub clock_drift_step: SimDuration,
    /// Cap on the accumulated drift term.
    pub clock_drift_cap: SimDuration,
    /// Per-toggle token-wire jitter bound.
    pub token_jitter: SimDuration,
    /// Per-toggle req/ack wire jitter bound.
    pub data_jitter: SimDuration,
}

impl AnalogFault {
    /// True when at least one term can produce a non-zero delay.
    pub fn is_active(&self) -> bool {
        !(self.clock_jitter.is_zero()
            && self.clock_drift_step.is_zero()
            && self.token_jitter.is_zero()
            && self.data_jitter.is_zero())
    }

    fn bound_fs(&self, class: u8) -> u64 {
        match class {
            CLASS_CLK => self.clock_jitter.as_fs(),
            CLASS_TOKEN => self.token_jitter.as_fs(),
            _ => self.data_jitter.as_fs(),
        }
    }

    /// The extra delay for occurrence `occ` of `(class, unit)` under
    /// `seed` — a pure function, identical on both backends.
    pub(crate) fn delta(&self, seed: u64, class: u8, unit: u32, occ: u64) -> SimDuration {
        let bound = self.bound_fs(class);
        let jitter = if bound == 0 {
            0
        } else {
            let key = mix64(seed ^ mix64((u64::from(class) << 32) | u64::from(unit)) ^ mix64(occ));
            key % (bound + 1)
        };
        let drift = if class == CLASS_CLK {
            self.clock_drift_step
                .as_fs()
                .saturating_mul(occ)
                .min(self.clock_drift_cap.as_fs())
        } else {
            0
        };
        SimDuration::fs(jitter + drift)
    }
}

/// Per-`(class, unit)` occurrence counters plus the draw itself: the
/// shared jitter engine both backends consult. Counting *delivered*
/// schedules (never dropped ones) on both sides keeps the draws aligned.
#[derive(Debug, Clone, Default)]
pub(crate) struct JitterCounters {
    fault: AnalogFault,
    seed: u64,
    occ: BTreeMap<(u8, u32), u64>,
}

impl JitterCounters {
    pub(crate) fn new(fault: AnalogFault, seed: u64) -> Self {
        JitterCounters {
            fault,
            seed,
            occ: BTreeMap::new(),
        }
    }

    /// Draws the next perturbation for `(class, unit)` and advances the
    /// occurrence counter.
    pub(crate) fn next(&mut self, class: u8, unit: u32) -> SimDuration {
        let occ = self.occ.entry((class, unit)).or_insert(0);
        let n = *occ;
        *occ += 1;
        self.fault.delta(self.seed, class, unit, n)
    }

    /// Canonical byte dump of the occurrence counters (the only dynamic
    /// state; bounds and seed are construction-time). BTreeMap iteration
    /// order makes the encoding deterministic.
    pub(crate) fn snapshot_occ(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(8 + 13 * self.occ.len());
        b.extend_from_slice(&(self.occ.len() as u64).to_le_bytes());
        for (&(class, unit), &n) in &self.occ {
            b.push(class);
            b.extend_from_slice(&unit.to_le_bytes());
            b.extend_from_slice(&n.to_le_bytes());
        }
        b
    }

    /// Restores counters dumped by [`snapshot_occ`](Self::snapshot_occ).
    pub(crate) fn restore_occ(&mut self, bytes: &[u8]) -> bool {
        if bytes.len() < 8 {
            return false;
        }
        let n = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        if bytes.len() != 8 + 13 * n {
            return false;
        }
        self.occ.clear();
        for e in bytes[8..].chunks_exact(13) {
            let class = e[0];
            let unit = u32::from_le_bytes(e[1..5].try_into().unwrap());
            let occ = u64::from_le_bytes(e[5..13].try_into().unwrap());
            self.occ.insert((class, unit), occ);
        }
        true
    }
}

/// Signal classification for the event backend's [`DelayModel`]: which
/// physical wire a signal models, and its jitter unit.
#[derive(Debug, Clone, Copy)]
enum SigClass {
    /// An SB clock; only rising (`Bit::One`) drives are perturbed.
    Clk(u32),
    /// A token toggle wire.
    Token(u32),
    /// A req/ack toggle wire.
    Data(u32),
}

/// The event-backend analog model: classifies each driven signal and
/// applies the shared jitter draw. Installed by `SystemBuilder::build`
/// when a plan with an active [`AnalogFault`] is attached.
#[derive(Debug)]
pub(crate) struct AnalogDelayModel {
    counters: JitterCounters,
    classes: BTreeMap<SignalId, SigClass>,
}

impl AnalogDelayModel {
    pub(crate) fn new(fault: AnalogFault, seed: u64) -> Self {
        AnalogDelayModel {
            counters: JitterCounters::new(fault, seed),
            classes: BTreeMap::new(),
        }
    }

    pub(crate) fn classify_clk(&mut self, sig: SignalId, sb: u32) {
        self.classes.insert(sig, SigClass::Clk(sb));
    }

    pub(crate) fn classify_token(&mut self, sig: SignalId, unit: u32) {
        self.classes.insert(sig, SigClass::Token(unit));
    }

    pub(crate) fn classify_data(&mut self, sig: SignalId, unit: u32) {
        self.classes.insert(sig, SigClass::Data(unit));
    }
}

impl DelayModel for AnalogDelayModel {
    fn perturb(
        &mut self,
        sig: SignalId,
        value: &Value,
        _now: SimTime,
        nominal: SimDuration,
    ) -> SimDuration {
        match self.classes.get(&sig) {
            Some(&SigClass::Clk(unit)) => {
                // Only rising edges jitter; falling edges complete on
                // the oscillator's nominal schedule (the paper's clock
                // stops synchronously at would-be rising edges, so the
                // rising edge is where phase error manifests).
                if *value == Value::Bit(Bit::One) {
                    nominal + self.counters.next(CLASS_CLK, unit)
                } else {
                    nominal
                }
            }
            Some(&SigClass::Token(unit)) => nominal + self.counters.next(CLASS_TOKEN, unit),
            Some(&SigClass::Data(unit)) => nominal + self.counters.next(CLASS_DATA, unit),
            None => nominal,
        }
    }

    fn snapshot_state(&self) -> Vec<u8> {
        self.counters.snapshot_occ()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        self.counters.restore_occ(bytes)
    }
}

/// One protocol-layer fault. `nth` counts occurrences of the targeted
/// action from zero (e.g. `nth: 3` hits the fourth token pass on that
/// ring in that direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The `nth` token pass on `ring` (toward the holder side iff
    /// `to_holder`) is silently lost on the wire.
    TokenLoss {
        /// Targeted ring.
        ring: RingId,
        /// Direction: toward the initial holder's node.
        to_holder: bool,
        /// Zero-based pass occurrence.
        nth: u64,
    },
    /// The `nth` token pass is duplicated: a second toggle follows the
    /// first after `extra`.
    TokenDup {
        /// Targeted ring.
        ring: RingId,
        /// Direction: toward the initial holder's node.
        to_holder: bool,
        /// Zero-based pass occurrence.
        nth: u64,
        /// Separation of the duplicate toggle (must be positive).
        extra: SimDuration,
    },
    /// The `nth` token pass is delayed by `extra` beyond the ring's
    /// nominal propagation delay.
    TokenDelay {
        /// Targeted ring.
        ring: RingId,
        /// Direction: toward the initial holder's node.
        to_holder: bool,
        /// Zero-based pass occurrence.
        nth: u64,
        /// Additional wire delay.
        extra: SimDuration,
    },
    /// The `nth` request toggle on `channel` never reaches the FIFO (the
    /// word is transmitted by the logic but lost on the wire).
    ReqDrop {
        /// Targeted channel.
        channel: ChannelId,
        /// Zero-based push occurrence.
        nth: u64,
    },
    /// The `nth` acknowledge toggle on `channel` is lost: the consumer
    /// read the head word, but the FIFO never pops it.
    AckDrop {
        /// Targeted channel.
        channel: ChannelId,
        /// Zero-based acknowledge occurrence.
        nth: u64,
    },
    /// The `nth` push into `channel` is stalled by `extra` (a slow FIFO
    /// entry stage).
    ChannelStall {
        /// Targeted channel.
        channel: ChannelId,
        /// Zero-based push occurrence.
        nth: u64,
        /// Additional entry latency.
        extra: SimDuration,
    },
}

/// State-layer SEU target within a node FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeuTarget {
    /// Flip bit `b` of the hold counter (clamped to stay ≥ 1).
    HoldBit(u32),
    /// Flip bit `b` of the recycle counter (clamped to stay ≥ 1).
    RecycleBit(u32),
    /// Flip the token latch (`has_token`).
    TokenLatch,
}

/// A single-event upset: flip one bit of `sb`'s node state on `ring`
/// once that SB reaches local cycle `at_cycle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeuFault {
    /// The SB whose node is struck.
    pub sb: SbId,
    /// The ring whose node is struck.
    pub ring: RingId,
    /// Local cycle (of the whole system, via `run_until_cycles`) at
    /// which the flip is applied.
    pub at_cycle: u64,
    /// What flips.
    pub target: SeuTarget,
}

/// The three fault layers, as classes with distinct oracle strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Analog variation: the invariant demands byte-identical traces.
    Analog,
    /// Protocol attacks: a classified outcome is required.
    Protocol,
    /// State upsets: a classified outcome is required.
    State,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClass::Analog => write!(f, "analog"),
            FaultClass::Protocol => write!(f, "protocol"),
            FaultClass::State => write!(f, "state"),
        }
    }
}

/// A complete, replayable fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for every analog draw in this plan.
    pub seed: u64,
    /// Analog-layer perturbation bounds.
    pub analog: AnalogFault,
    /// Protocol-layer faults.
    pub protocol: Vec<Fault>,
    /// State-layer upsets.
    pub seu: Vec<SeuFault>,
}

impl FaultPlan {
    /// True when the plan perturbs nothing.
    pub fn is_empty(&self) -> bool {
        !self.analog.is_active() && self.protocol.is_empty() && self.seu.is_empty()
    }

    /// True when only analog-layer faults are present — the class whose
    /// oracle demands byte-identical traces.
    pub fn is_analog_only(&self) -> bool {
        self.analog.is_active() && self.protocol.is_empty() && self.seu.is_empty()
    }

    /// For plans whose *only* faults are SEUs, the earliest local cycle
    /// any of them fires; `None` otherwise.
    ///
    /// SEU-only plans are special for prefix-sharing: analog and protocol
    /// faults install builder-time machinery (delay models, injectors)
    /// that makes the attacked engine differ from the nominal one from
    /// cycle 0, but SEUs are applied *externally* by
    /// [`run_with_plan`] — until the first `at_cycle`, the engine is
    /// bit-identical to a fault-free run and can resume from a shared
    /// nominal checkpoint.
    pub fn seu_only_first_fire(&self) -> Option<u64> {
        if self.analog.is_active() || !self.protocol.is_empty() {
            return None;
        }
        self.seu.iter().map(|s| s.at_cycle).min()
    }

    /// Generates a single-class plan for `spec`, derived entirely from
    /// `seed`. Bounds are spec-aware:
    ///
    /// * clock jitter stays well under the smallest half period *and*
    ///   under a quarter of the smallest setup slack
    ///   (`period - logic_delay`), so a jitter-shortened cycle can never
    ///   trip the modelled setup check — analog faults must exercise the
    ///   invariant, not manufacture a legitimate timing failure;
    /// * token/data jitter stays under a sixteenth of the smallest half
    ///   period;
    /// * stall/delay extras stay under half the smallest half period,
    ///   so compiled-backend event mirroring stays exact.
    pub fn generate(class: FaultClass, spec: &SystemSpec, seed: u64) -> FaultPlan {
        let mut state = mix64(seed ^ 0x5EED_FA17);
        let mut next = || {
            state = mix64(state);
            state
        };
        let min_half = spec
            .sbs
            .iter()
            .map(|s| s.period.as_fs() / 2)
            .min()
            .unwrap_or(1)
            .max(1);
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        match class {
            FaultClass::Analog => {
                let slack = spec
                    .sbs
                    .iter()
                    .map(|s| s.period.as_fs().saturating_sub(s.logic_delay.as_fs()))
                    .min()
                    .unwrap_or(0);
                let divisor = 16 << (next() % 3); // 16, 32 or 64
                let clock = (min_half / divisor).min(slack / 4);
                let wire = (min_half / 16).max(1);
                plan.analog = AnalogFault {
                    clock_jitter: SimDuration::fs(clock),
                    clock_drift_step: SimDuration::fs(clock / 8),
                    clock_drift_cap: SimDuration::fs(clock),
                    token_jitter: SimDuration::fs(wire),
                    data_jitter: SimDuration::fs(wire),
                };
            }
            FaultClass::Protocol => {
                let n = 1 + next() % 3;
                for _ in 0..n {
                    let ring = RingId((next() % spec.rings.len().max(1) as u64) as usize);
                    let channel = ChannelId((next() % spec.channels.len().max(1) as u64) as usize);
                    let to_holder = next() & 1 == 0;
                    let nth = next() % 12;
                    let extra = SimDuration::fs(1 + next() % (min_half / 2).max(1));
                    plan.protocol.push(match next() % 6 {
                        0 => Fault::TokenLoss {
                            ring,
                            to_holder,
                            nth,
                        },
                        1 => Fault::TokenDup {
                            ring,
                            to_holder,
                            nth,
                            extra,
                        },
                        2 => Fault::TokenDelay {
                            ring,
                            to_holder,
                            nth,
                            extra,
                        },
                        3 => Fault::ReqDrop { channel, nth },
                        4 => Fault::AckDrop { channel, nth },
                        _ => Fault::ChannelStall {
                            channel,
                            nth,
                            extra,
                        },
                    });
                }
            }
            FaultClass::State => {
                let n = 1 + next() % 2;
                for _ in 0..n {
                    let ring_idx = (next() % spec.rings.len().max(1) as u64) as usize;
                    let ring_spec = &spec.rings[ring_idx.min(spec.rings.len().saturating_sub(1))];
                    let sb = if next() & 1 == 0 {
                        ring_spec.holder
                    } else {
                        ring_spec.peer
                    };
                    let bit = (next() % 3) as u32;
                    plan.seu.push(SeuFault {
                        sb,
                        ring: RingId(ring_idx),
                        at_cycle: 4 + next() % 36,
                        target: match next() % 4 {
                            0 => SeuTarget::HoldBit(bit),
                            1 => SeuTarget::RecycleBit(bit),
                            _ => SeuTarget::TokenLatch,
                        },
                    });
                }
            }
        }
        plan
    }
}

/// Per-unit protocol-fault occurrence counters; consulted by both
/// backends at the same logical sites (transmit, acknowledge, token
/// pass), so a plan replays identically.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    faults: Vec<Fault>,
    /// Token passes seen, indexed `ring * 2 + to_holder`.
    token_passes: Vec<u64>,
    /// Pushes seen, per channel.
    pushes: Vec<u64>,
    /// Acknowledges seen, per channel.
    acks: Vec<u64>,
}

/// What a token pass becomes under the active plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokenPassAction {
    Deliver,
    Drop,
    Delay(SimDuration),
    Duplicate(SimDuration),
}

/// What a req/ack toggle becomes under the active plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DataAction {
    Deliver,
    Drop,
    Delay(SimDuration),
}

impl FaultInjector {
    pub(crate) fn new(faults: Vec<Fault>, rings: usize, channels: usize) -> Self {
        FaultInjector {
            faults,
            token_passes: vec![0; rings * 2],
            pushes: vec![0; channels],
            acks: vec![0; channels],
        }
    }

    /// Consulted once per token pass; counts the pass and returns what
    /// the wire should do with it.
    pub(crate) fn on_token_pass(&mut self, ring: RingId, to_holder: bool) -> TokenPassAction {
        let unit = ring.0 * 2 + usize::from(to_holder);
        let n = self.token_passes[unit];
        self.token_passes[unit] += 1;
        for f in &self.faults {
            match *f {
                Fault::TokenLoss {
                    ring: r,
                    to_holder: d,
                    nth,
                } if r == ring && d == to_holder && nth == n => return TokenPassAction::Drop,
                Fault::TokenDup {
                    ring: r,
                    to_holder: d,
                    nth,
                    extra,
                } if r == ring && d == to_holder && nth == n => {
                    return TokenPassAction::Duplicate(extra)
                }
                Fault::TokenDelay {
                    ring: r,
                    to_holder: d,
                    nth,
                    extra,
                } if r == ring && d == to_holder && nth == n => {
                    return TokenPassAction::Delay(extra)
                }
                _ => {}
            }
        }
        TokenPassAction::Deliver
    }

    /// Consulted once per accepted transmit.
    pub(crate) fn on_push(&mut self, channel: ChannelId) -> DataAction {
        let n = self.pushes[channel.0];
        self.pushes[channel.0] += 1;
        for f in &self.faults {
            match *f {
                Fault::ReqDrop { channel: c, nth } if c == channel && nth == n => {
                    return DataAction::Drop
                }
                Fault::ChannelStall {
                    channel: c,
                    nth,
                    extra,
                } if c == channel && nth == n => return DataAction::Delay(extra),
                _ => {}
            }
        }
        DataAction::Deliver
    }

    /// Dumps the occurrence counters (the fault list is construction-time
    /// state shared with the plan).
    pub(crate) fn snapshot_counters(&self) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        (
            self.token_passes.clone(),
            self.pushes.clone(),
            self.acks.clone(),
        )
    }

    /// Restores counters dumped by
    /// [`snapshot_counters`](Self::snapshot_counters); `false` on a shape
    /// mismatch (checkpoint from a different topology).
    pub(crate) fn restore_counters(
        &mut self,
        token_passes: &[u64],
        pushes: &[u64],
        acks: &[u64],
    ) -> bool {
        if token_passes.len() != self.token_passes.len()
            || pushes.len() != self.pushes.len()
            || acks.len() != self.acks.len()
        {
            return false;
        }
        self.token_passes.copy_from_slice(token_passes);
        self.pushes.copy_from_slice(pushes);
        self.acks.copy_from_slice(acks);
        true
    }

    /// Consulted once per acknowledge.
    pub(crate) fn on_ack(&mut self, channel: ChannelId) -> DataAction {
        let n = self.acks[channel.0];
        self.acks[channel.0] += 1;
        for f in &self.faults {
            if let Fault::AckDrop { channel: c, nth } = *f {
                if c == channel && nth == n {
                    return DataAction::Drop;
                }
            }
        }
        DataAction::Deliver
    }
}

/// The classified result of a faulted run, compared against the golden
/// (unfaulted) traces — the executable form of the paper's invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// Every SB's I/O trace is byte-identical to the golden run.
    TraceIdentical,
    /// At least one SB diverged; carries the earliest divergence.
    Divergence {
        /// First SB (lowest id) whose trace differs.
        sb: SbId,
        /// First local cycle at which it differs.
        first_cycle: u64,
    },
    /// The run deadlocked and the engine detected it.
    Deadlock {
        /// SBs whose clocks were parked at detection.
        stopped: Vec<SbId>,
    },
    /// The simulated-time budget expired first.
    Timeout,
}

impl ChaosOutcome {
    /// Short classification label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosOutcome::TraceIdentical => "trace-identical",
            ChaosOutcome::Divergence { .. } => "divergence",
            ChaosOutcome::Deadlock { .. } => "deadlock",
            ChaosOutcome::Timeout => "timeout",
        }
    }
}

impl fmt::Display for ChaosOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosOutcome::TraceIdentical => write!(f, "trace-identical"),
            ChaosOutcome::Divergence { sb, first_cycle } => {
                write!(f, "divergence at {sb} cycle {first_cycle}")
            }
            ChaosOutcome::Deadlock { stopped } => {
                write!(f, "deadlock (stopped:")?;
                for s in stopped {
                    write!(f, " {s}")?;
                }
                write!(f, ")")
            }
            ChaosOutcome::Timeout => write!(f, "timeout"),
        }
    }
}

/// Runs `sys` to `cycles` under `plan`'s SEU schedule (analog/protocol
/// faults were already installed at build time via
/// [`SystemBuilder::with_fault_plan`](crate::system::SystemBuilder::with_fault_plan)),
/// bounded by `budget` of simulated time overall.
///
/// # Errors
///
/// Propagates kernel errors (combinational loops) from the event
/// backend.
pub fn run_with_plan(
    sys: &mut AnySystem,
    plan: &FaultPlan,
    cycles: u64,
    budget: SimDuration,
) -> Result<RunOutcome, SimError> {
    run_with_plan_resumed(sys, plan, 0, cycles, sys.now() + budget)
}

/// [`run_with_plan`] continued from a resumed engine: `sys` was
/// restored from a checkpoint taken after a straight run's
/// `run_until_cycles(reached, _)` call, and `deadline` is the straight
/// run's absolute budget deadline (its start time plus the budget).
/// The remaining drive — SEU flips at `reached`, the chunked runs to
/// each later fire cycle, the final run to `cycles` — then replays the
/// straight run's exact call sequence, so the continuation is
/// byte-identical to [`run_with_plan`] from a fresh build. SEUs whose
/// (cycle-capped) fire cycle is below `reached` are applied
/// immediately without running, mirroring where the straight sequence
/// would have placed them only when `reached` equals the plan's first
/// fire cycle — which is how the prefix-fork planner always calls
/// this.
///
/// # Errors
///
/// Propagates kernel errors (combinational loops) from the event
/// backend.
pub fn run_with_plan_resumed(
    sys: &mut AnySystem,
    plan: &FaultPlan,
    resumed_cycles: u64,
    cycles: u64,
    deadline: SimTime,
) -> Result<RunOutcome, SimError> {
    let mut seus: Vec<&SeuFault> = plan.seu.iter().collect();
    seus.sort_by_key(|s| s.at_cycle);
    let mut reached = resumed_cycles;
    for seu in seus {
        let at = seu.at_cycle.min(cycles);
        if at > reached {
            let left = deadline.saturating_since(sys.now());
            if left.is_zero() {
                return Ok(RunOutcome::TimedOut);
            }
            match sys.run_until_cycles(at, left)? {
                RunOutcome::Reached => {}
                other => return Ok(other),
            }
            reached = at;
        }
        if let Some(fsm) = sys.node_mut(seu.sb, seu.ring) {
            match seu.target {
                SeuTarget::HoldBit(b) => fsm.seu_flip_hold(b),
                SeuTarget::RecycleBit(b) => fsm.seu_flip_recycle(b),
                SeuTarget::TokenLatch => fsm.seu_flip_token_latch(),
            }
        }
    }
    let left = deadline.saturating_since(sys.now());
    if left.is_zero() {
        return Ok(RunOutcome::TimedOut);
    }
    sys.run_until_cycles(cycles, left)
}

/// Classifies a completed faulted run against per-SB golden traces.
///
/// Trace comparison happens even for deadlocked/timed-out runs inside
/// the chaos driver's violation checks; here the run outcome takes
/// precedence because it already *is* a diagnosis.
pub fn classify(golden: &[SbIoTrace], sys: &AnySystem, outcome: &RunOutcome) -> ChaosOutcome {
    match outcome {
        RunOutcome::Deadlock { stopped } => ChaosOutcome::Deadlock {
            stopped: stopped.clone(),
        },
        RunOutcome::TimedOut => ChaosOutcome::Timeout,
        RunOutcome::Reached => {
            for (i, g) in golden.iter().enumerate() {
                let t = sys.io_trace(SbId(i));
                if let Some(cycle) = g.first_divergence(t) {
                    return ChaosOutcome::Divergence {
                        sb: SbId(i),
                        first_cycle: cycle,
                    };
                }
                if t.len() != g.len() {
                    return ChaosOutcome::Divergence {
                        sb: SbId(i),
                        first_cycle: t.len().min(g.len()) as u64,
                    };
                }
            }
            ChaosOutcome::TraceIdentical
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_draws_are_pure_and_bounded() {
        let f = AnalogFault {
            clock_jitter: SimDuration::fs(500),
            clock_drift_step: SimDuration::fs(10),
            clock_drift_cap: SimDuration::fs(200),
            token_jitter: SimDuration::fs(300),
            data_jitter: SimDuration::ZERO,
        };
        for occ in 0..200 {
            let a = f.delta(42, CLASS_CLK, 1, occ);
            let b = f.delta(42, CLASS_CLK, 1, occ);
            assert_eq!(a, b, "draws must be pure");
            assert!(a <= SimDuration::fs(500 + 200), "bounded: {a:?}");
            let t = f.delta(42, CLASS_TOKEN, 3, occ);
            assert!(t <= SimDuration::fs(300));
            assert_eq!(f.delta(42, CLASS_DATA, 0, occ), SimDuration::ZERO);
        }
        // Different seeds and units decorrelate.
        let spread: std::collections::BTreeSet<u64> = (0..64)
            .map(|occ| f.delta(7, CLASS_CLK, 0, occ).as_fs())
            .collect();
        assert!(spread.len() > 16, "draws must actually vary");
    }

    #[test]
    fn jitter_counters_advance_per_unit() {
        let f = AnalogFault {
            clock_jitter: SimDuration::fs(1000),
            ..AnalogFault::default()
        };
        let mut c1 = JitterCounters::new(f, 9);
        let mut c2 = JitterCounters::new(f, 9);
        // Interleaving draws across units must not change per-unit draws.
        let a0 = c1.next(CLASS_CLK, 0);
        let _ = c1.next(CLASS_CLK, 1);
        let a1 = c1.next(CLASS_CLK, 0);
        let b0 = c2.next(CLASS_CLK, 0);
        let b1 = c2.next(CLASS_CLK, 0);
        assert_eq!(a0, b0);
        assert_eq!(a1, b1);
    }

    #[test]
    fn injector_matches_nth_occurrence_only() {
        let mut inj = FaultInjector::new(
            vec![
                Fault::TokenLoss {
                    ring: RingId(0),
                    to_holder: true,
                    nth: 2,
                },
                Fault::ReqDrop {
                    channel: ChannelId(1),
                    nth: 0,
                },
            ],
            2,
            2,
        );
        assert_eq!(inj.on_token_pass(RingId(0), true), TokenPassAction::Deliver);
        assert_eq!(inj.on_token_pass(RingId(0), true), TokenPassAction::Deliver);
        assert_eq!(inj.on_token_pass(RingId(0), true), TokenPassAction::Drop);
        assert_eq!(inj.on_token_pass(RingId(0), true), TokenPassAction::Deliver);
        // Other direction has its own counter.
        assert_eq!(
            inj.on_token_pass(RingId(0), false),
            TokenPassAction::Deliver
        );
        assert_eq!(inj.on_push(ChannelId(1)), DataAction::Drop);
        assert_eq!(inj.on_push(ChannelId(1)), DataAction::Deliver);
        assert_eq!(inj.on_push(ChannelId(0)), DataAction::Deliver);
        assert_eq!(inj.on_ack(ChannelId(1)), DataAction::Deliver);
    }

    #[test]
    fn generated_plans_are_single_class_and_reproducible() {
        let spec = crate::scenarios::pingpong_spec();
        for seed in 0..32 {
            let a = FaultPlan::generate(FaultClass::Analog, &spec, seed);
            assert!(a.is_analog_only(), "{a:?}");
            assert_eq!(a, FaultPlan::generate(FaultClass::Analog, &spec, seed));
            let p = FaultPlan::generate(FaultClass::Protocol, &spec, seed);
            assert!(!p.protocol.is_empty() && p.seu.is_empty() && !p.analog.is_active());
            let s = FaultPlan::generate(FaultClass::State, &spec, seed);
            assert!(!s.seu.is_empty() && s.protocol.is_empty() && !s.analog.is_active());
            // Bounds: clock jitter must stay well under the half period.
            let min_half = spec.sbs.iter().map(|x| x.period / 2).min().unwrap();
            assert!(a.analog.clock_jitter + a.analog.clock_drift_cap < min_half.scaled(1, 4));
        }
    }
}
