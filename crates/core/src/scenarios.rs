//! Canonical systems shared by tests, examples and the benchmark harness.
//!
//! The centrepiece is [`e1_spec`]: the paper's §5 validation platform —
//! "a system composed of three SBs and six FIFOs" — with every pair of
//! SBs joined by a token ring carrying one channel in each direction.

use crate::logic::{SbIo, SyncLogic};
use crate::rules::{check_determinism_rules, ScaleRange};
use crate::spec::{NodeParams, SbId, SystemSpec};
use crate::system::{RunOutcome, System, SystemBuilder};
use st_sim::time::SimDuration;

/// A simple producer → consumer pair with generous margins; the smallest
/// interesting synchro-tokens system.
pub fn producer_consumer_spec() -> SystemSpec {
    let mut s = SystemSpec::default();
    let tx = s.add_sb("tx", SimDuration::ns(10));
    let rx = s.add_sb("rx", SimDuration::ns(10));
    let ring = s.add_ring(tx, rx, NodeParams::new(4, 12), SimDuration::ns(30));
    s.add_channel(tx, rx, ring, 16, 4, SimDuration::ns(1));
    s
}

/// A bidirectional two-SB ping-pong: one token ring carrying a channel
/// in each direction, with high interface duty (hold 12 of a 26-cycle
/// rotation, short ring wires) so words bounce between the SBs on most
/// enabled cycles. This is the dense counterpart to
/// [`producer_consumer_spec`] — the workload a chip-level test session
/// sustains once the token schedule is warmed up — and the reference
/// workload of the `system_sim` benchmark.
pub fn pingpong_spec() -> SystemSpec {
    let mut s = SystemSpec::default();
    let a = s.add_sb("ping", SimDuration::ns(10));
    let b = s.add_sb("pong", SimDuration::ns(10));
    let r = s.add_ring(a, b, NodeParams::new(12, 14), SimDuration::ns(2));
    s.add_channel(a, b, r, 16, 16, SimDuration::ns(1));
    s.add_channel(b, a, r, 16, 16, SimDuration::ns(1));
    s
}

/// Builds the [`pingpong_spec`] workload behind a chosen backend: a
/// sequence source on `ping`, an echo pipe on `pong`, words flowing
/// both ways.
pub fn build_pingpong_backend(trace_cycles: usize, backend: crate::Backend) -> crate::AnySystem {
    use crate::logic::{PipeTransform, SequenceSource};
    SystemBuilder::new(pingpong_spec())
        .expect("ping-pong spec is valid")
        .with_logic(SbId(0), SequenceSource::new(100, 1))
        .with_logic(SbId(1), PipeTransform::new(64, |w| w.wrapping_add(1)))
        .with_trace_limit(trace_cycles)
        .build_backend(backend)
}

/// The §5 validation platform: three SBs with pairwise token rings and
/// six FIFO channels (one per direction per pair). Local clock periods
/// are deliberately unequal (10/12/14 ns). Recycle registers are the
/// empirically calibrated minima (see [`calibrate_min_recycles`]): with
/// nominal delays the token returns exactly when expected — never early
/// enough to matter, never late.
///
/// Calibration runs simulations, so the result is computed once and
/// cached for the process lifetime.
pub fn e1_spec() -> SystemSpec {
    use std::sync::OnceLock;
    static CACHE: OnceLock<SystemSpec> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            // Seed with product-matched recycle registers (see
            // `matched_ring_recycles`), bump until the steady state is
            // verified stall-free, then tighten by coordinate descent.
            let mut s = e1_spec_uncalibrated(1);
            let mut extra = 0;
            loop {
                matched_ring_recycles(&mut s, extra);
                if steady_state_stall_free(&s, 60, 150) {
                    break;
                }
                extra += 1;
                assert!(extra < 8, "could not find a stall-free E1 nominal");
            }
            let s = calibrate_min_recycles(s, 150);
            debug_assert!(
                check_determinism_rules(&s, ScaleRange::PAPER_SWEEP).is_empty(),
                "the E1 platform must satisfy every determinism rule across the sweep"
            );
            s
        })
        .clone()
}

/// [`e1_spec`] before recycle calibration, with every recycle register
/// set to `recycle`.
pub fn e1_spec_uncalibrated(recycle: u32) -> SystemSpec {
    let mut s = SystemSpec::default();
    let a = s.add_sb("alpha", SimDuration::ns(10));
    let b = s.add_sb("beta", SimDuration::ns(12));
    let c = s.add_sb("gamma", SimDuration::ns(14));
    let hold = 4;
    let n = NodeParams::new(hold, recycle);
    let r_ab = s.add_ring(a, b, n, SimDuration::ns(30));
    let r_bc = s.add_ring(b, c, n, SimDuration::ns(30));
    let r_ca = s.add_ring(c, a, n, SimDuration::ns(30));
    let f = SimDuration::ps(200);
    let depth = 4;
    s.add_channel(a, b, r_ab, 16, depth, f);
    s.add_channel(b, a, r_ab, 16, depth, f);
    s.add_channel(b, c, r_bc, 16, depth, f);
    s.add_channel(c, b, r_bc, 16, depth, f);
    s.add_channel(c, a, r_ca, 16, depth, f);
    s.add_channel(a, c, r_ca, 16, depth, f);
    s
}

/// A linear pipeline of `n` SBs (the paper's future-work "larger system
/// for further performance studies"): SB `i` streams to SB `i+1` over
/// its own token ring and channel. Periods cycle through 10/12/14 ns so
/// neighbouring blocks are genuinely plesiochronous. Recycle registers
/// are product-matched with first-arrival presets.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn chain_spec(n: usize) -> SystemSpec {
    assert!(n >= 2, "a chain needs at least two SBs");
    let mut s = SystemSpec::default();
    let periods = [10u64, 12, 14];
    let sbs: Vec<SbId> = (0..n)
        .map(|i| s.add_sb(&format!("stage{i}"), SimDuration::ns(periods[i % 3])))
        .collect();
    for w in sbs.windows(2) {
        let r = s.add_ring(w[0], w[1], NodeParams::new(4, 1), SimDuration::ns(30));
        s.add_channel(w[0], w[1], r, 16, 4, SimDuration::ps(200));
    }
    matched_ring_recycles(&mut s, 0);
    s
}

/// A closed ring of `n` SBs — every SB forwards to its clockwise
/// neighbour. This is the deadlock-*risk* topology (the stall-capable
/// multigraph is one big cycle); [`crate::deadlock::apply_prevention_rule`]
/// plus product matching keep it live.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn closed_ring_spec(n: usize) -> SystemSpec {
    assert!(n >= 3, "a closed ring needs at least three SBs");
    let mut s = SystemSpec::default();
    let sbs: Vec<SbId> = (0..n)
        .map(|i| s.add_sb(&format!("core{i}"), SimDuration::ns(10)))
        .collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let r = s.add_ring(sbs[i], sbs[j], NodeParams::new(4, 1), SimDuration::ns(30));
        s.add_channel(sbs[i], sbs[j], r, 16, 4, SimDuration::ps(200));
    }
    matched_ring_recycles(&mut s, 0);
    s
}

/// A deliberately deadlocking triangle (used by E6): every SB holds one
/// ring's token for a long time (hold 8) while expecting the other
/// ring's token almost immediately (recycle 1). Every clock stops within
/// its first cycles with all three tokens frozen inside stopped holders
/// — a textbook wait-for cycle, and per §5 a *deterministic* one.
pub fn starved_triangle_spec() -> SystemSpec {
    let mut s = SystemSpec::default();
    let a = s.add_sb("a", SimDuration::ns(10));
    let b = s.add_sb("b", SimDuration::ns(10));
    let c = s.add_sb("c", SimDuration::ns(10));
    let n = NodeParams::new(8, 1);
    let r0 = s.add_ring(a, b, n, SimDuration::ns(20));
    let r1 = s.add_ring(b, c, n, SimDuration::ns(20));
    let r2 = s.add_ring(c, a, n, SimDuration::ns(20));
    s.add_channel(a, b, r0, 8, 2, SimDuration::ps(200));
    s.add_channel(b, c, r1, 8, 2, SimDuration::ps(200));
    s.add_channel(c, a, r2, 8, 2, SimDuration::ps(200));
    s
}

/// The mixing behaviour attached to every SB of the E1 platform: folds
/// all received words into an accumulator and transmits
/// `counter ⊕ accumulator` on every output that can accept a word — so
/// any deviation anywhere in the system contaminates everything
/// downstream, making the I/O-sequence comparison maximally sensitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixerLogic {
    /// Per-SB identity mixed into transmitted words.
    pub salt: u64,
    counter: u64,
    acc: u64,
    /// Words transmitted.
    pub sent: u64,
    /// Words received.
    pub received: u64,
}

impl MixerLogic {
    /// A mixer with a per-SB salt.
    pub fn new(salt: u64) -> Self {
        MixerLogic {
            salt,
            counter: 0,
            acc: 0,
            sent: 0,
            received: 0,
        }
    }

    /// The internal architectural state `(counter, accumulator)` — what
    /// a scan chain would capture.
    pub fn state(&self) -> (u64, u64) {
        (self.counter, self.acc)
    }

    /// Overwrites the architectural state — what a scan chain would
    /// update.
    pub fn set_state(&mut self, counter: u64, acc: u64) {
        self.counter = counter;
        self.acc = acc;
    }
}

impl SyncLogic for MixerLogic {
    fn tick(&mut self, _cycle: u64, io: &mut SbIo<'_>) {
        for i in 0..io.num_inputs() {
            if let Some(w) = io.recv(i) {
                self.acc = self
                    .acc
                    .rotate_left(7)
                    .wrapping_add(w)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15 | 1);
                self.received += 1;
            }
        }
        for o in 0..io.num_outputs() {
            if io.can_send(o) {
                let w = self.counter.wrapping_add(self.salt).wrapping_add(self.acc) & 0xFFFF;
                io.send(o, w);
                self.counter = self.counter.wrapping_add(1);
                self.sent += 1;
            }
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut buf = Vec::with_capacity(32);
        crate::logic::push_u64(&mut buf, self.counter);
        crate::logic::push_u64(&mut buf, self.acc);
        crate::logic::push_u64(&mut buf, self.sent);
        crate::logic::push_u64(&mut buf, self.received);
        Some(buf)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let Some([counter, acc, sent, received]) = crate::logic::fixed_u64s(bytes) else {
            return false;
        };
        self.counter = counter;
        self.acc = acc;
        self.sent = sent;
        self.received = received;
        true
    }
}

/// Builds the E1 system (synchro-tokens mode) over `spec` with mixers on
/// every SB.
pub fn build_e1(spec: SystemSpec, seed: u64, trace_cycles: usize) -> System {
    e1_builder(spec, seed, trace_cycles).build()
}

/// Builds the E1 system behind a chosen backend (see
/// [`crate::Backend`]); behaviourally identical to [`build_e1`].
pub fn build_e1_backend(
    spec: SystemSpec,
    seed: u64,
    trace_cycles: usize,
    backend: crate::Backend,
) -> crate::AnySystem {
    e1_builder(spec, seed, trace_cycles).build_backend(backend)
}

fn e1_builder(spec: SystemSpec, seed: u64, trace_cycles: usize) -> SystemBuilder {
    let n = spec.sbs.len();
    let mut builder = SystemBuilder::new(spec)
        .expect("E1 spec is valid")
        .with_seed(seed)
        .with_trace_limit(trace_cycles);
    for i in 0..n {
        builder = builder.with_logic(SbId(i), MixerLogic::new(0x1000 * i as u64));
    }
    builder
}

/// Builds the E1 system in nondeterministic bypass mode.
pub fn build_e1_bypass(spec: SystemSpec, seed: u64, trace_cycles: usize) -> System {
    let n = spec.sbs.len();
    let mut builder = SystemBuilder::new(spec)
        .expect("E1 spec is valid")
        .with_seed(seed)
        .with_trace_limit(trace_cycles)
        .bypass(SimDuration::ps(150));
    for i in 0..n {
        builder = builder.with_logic(SbId(i), MixerLogic::new(0x1000 * i as u64));
    }
    builder.build()
}

/// Sets every ring's recycle registers to the smallest *product-matched*
/// values: a ring's steady state is stall-free only when both sides
/// agree on the rotation period, `(H_a + R_a)·T_a = (H_b + R_b)·T_b`
/// (the token system is a max-plus recurrence; a mismatch makes the
/// faster side's token late every rotation). The common period is the
/// smallest multiple `m` of `lcm(T_a, T_b)` that covers the physical
/// round trip `H_a·T_a + H_b·T_b + D_fwd + D_back`, plus `extra` more
/// multiples of slack.
pub fn matched_ring_recycles(spec: &mut SystemSpec, extra: u64) {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    for ring in &mut spec.rings {
        let ta = spec.sbs[ring.holder.0].period.as_fs();
        let tb = spec.sbs[ring.peer.0].period.as_fs();
        let ha = u64::from(ring.holder_node.hold);
        let hb = u64::from(ring.peer_node.hold);
        let l = ta / gcd(ta, tb) * tb;
        let cross = ha * ta + hb * tb + ring.delay_fwd.as_fs() + ring.delay_back.as_fs();
        let mut m = cross.div_ceil(l).max(1) + extra;
        loop {
            let p = m * l;
            let ra = p / ta - ha;
            let rb = p / tb - hb;
            if ra >= 1 && rb >= 1 {
                ring.holder_node.recycle = u32::try_from(ra).expect("recycle fits u32");
                ring.peer_node.recycle = u32::try_from(rb).expect("recycle fits u32");
                break;
            }
            m += 1;
        }
        // Phase-align the waiter's *first* recognition with the token's
        // first arrival: the holder passes on its H-th edge (edges fall
        // at T/2, 3T/2, …), the token flies D_fwd, and the waiter's n-th
        // edge must be the last one no later than one grace period after
        // arrival. Without this preset, the waiter sits on the token and
        // the return leg is late by the sitting time — every rotation.
        let arrival = (2 * ha - 1) * ta / 2 + ring.delay_fwd.as_fs();
        // First waiter edge at or after the arrival: the token is present
        // (or in the grace gap) when the first recognition happens.
        let n0 = (2 * arrival + tb).div_ceil(2 * tb);
        let initial = u32::try_from(n0.max(1)).expect("preset fits u32");
        ring.peer_initial_recycle = Some(initial);
    }
}

/// True when a nominal run of `spec` reaches steady state without any
/// clock stall after an initial warm-up.
///
/// A ring's two sides phase-lock only after the first rotation (the
/// initial counter phases are arbitrary), so a bounded number of warm-up
/// stalls is inherent; what the paper's "never early and never late"
/// nominal demands is that the *steady state* is stall-free — every
/// token arrives within its final recycle cycle, rotation after
/// rotation.
pub fn steady_state_stall_free(spec: &SystemSpec, warmup_cycles: u64, probe_cycles: u64) -> bool {
    let mut sys = build_e1_like(spec.clone());
    if !matches!(
        sys.run_until_cycles(warmup_cycles, SimDuration::us(2000)),
        Ok(RunOutcome::Reached)
    ) {
        return false;
    }
    let warm: Vec<u64> = (0..spec.sbs.len())
        .map(|i| sys.clock_stats(SbId(i)).1)
        .collect();
    if !matches!(
        sys.run_until_cycles(warmup_cycles + probe_cycles, SimDuration::us(4000)),
        Ok(RunOutcome::Reached)
    ) {
        return false;
    }
    (0..spec.sbs.len()).all(|i| sys.clock_stats(SbId(i)).1 == warm[i])
}

/// Coordinate-descent calibration of the recycle registers: repeatedly
/// lowers each register while a nominal run stays
/// [`steady_state_stall_free`]. The result is the empirical minimum —
/// with nominal delays, every token arrives within the final recycle
/// cycle ("never early and never late").
///
/// # Panics
///
/// Panics if the starting spec already stalls in steady state (callers
/// should over-provision, e.g. [`e1_spec_uncalibrated`] with recycle 64).
pub fn calibrate_min_recycles(mut spec: SystemSpec, probe_cycles: u64) -> SystemSpec {
    let stall_free = |s: &SystemSpec| -> bool { steady_state_stall_free(s, 60, probe_cycles) };
    assert!(
        stall_free(&spec),
        "calibration must start from a stall-free configuration"
    );
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..spec.rings.len() {
            for side in 0..2 {
                // Descend with shrinking steps; a full-system probe after
                // every step keeps cross-ring interactions honest.
                for step in [16u32, 8, 4, 2, 1] {
                    loop {
                        let cur = if side == 0 {
                            spec.rings[i].holder_node.recycle
                        } else {
                            spec.rings[i].peer_node.recycle
                        };
                        if cur <= step {
                            break;
                        }
                        let mut trial = spec.clone();
                        if side == 0 {
                            trial.rings[i].holder_node.recycle = cur - step;
                        } else {
                            trial.rings[i].peer_node.recycle = cur - step;
                        }
                        if stall_free(&trial) {
                            spec = trial;
                            improved = true;
                        } else {
                            break;
                        }
                    }
                }
            }
        }
    }
    spec
}

/// Builds any spec with mixers (used by calibration probes).
fn build_e1_like(spec: SystemSpec) -> System {
    let n = spec.sbs.len();
    let mut builder = SystemBuilder::new(spec)
        .expect("spec must be valid")
        .with_trace_limit(1);
    for i in 0..n {
        builder = builder.with_logic(SbId(i), MixerLogic::new(0x1000 * i as u64));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ChannelId;

    #[test]
    fn e1_spec_shape_matches_the_paper() {
        let s = e1_spec();
        assert_eq!(s.sbs.len(), 3, "three SBs");
        assert_eq!(s.channels.len(), 6, "six FIFOs");
        assert_eq!(s.rings.len(), 3, "a ring per communicating pair");
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn e1_satisfies_determinism_rules_across_paper_sweep() {
        let s = e1_spec();
        let v = check_determinism_rules(&s, ScaleRange::PAPER_SWEEP);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn e1_nominal_steady_state_never_stalls() {
        // Warm-up stalls are allowed (initial phases are arbitrary); the
        // calibrated steady state must be stall-free.
        assert!(steady_state_stall_free(&e1_spec(), 60, 150));
        // And the system reaches the requested cycles comfortably.
        let mut sys = build_e1(e1_spec(), 0, 100);
        let out = sys.run_until_cycles(150, SimDuration::us(2000)).unwrap();
        assert_eq!(out, RunOutcome::Reached);
    }

    #[test]
    fn e1_calibration_is_tight() {
        // Lowering recycle registers by one must introduce steady-state
        // stalls somewhere — otherwise the calibration missed a minimum.
        let s = e1_spec();
        assert!(steady_state_stall_free(&s, 60, 150));
        let mut any_tight = 0;
        for i in 0..s.rings.len() {
            let mut t = s.clone();
            if t.rings[i].holder_node.recycle > 1 {
                t.rings[i].holder_node.recycle -= 1;
                if !steady_state_stall_free(&t, 60, 150) {
                    any_tight += 1;
                }
            }
        }
        assert!(any_tight >= 1, "no ring was at its empirical minimum");
    }

    #[test]
    fn e1_data_flows_on_every_channel() {
        let mut sys = build_e1(e1_spec(), 0, 100);
        sys.run_until_cycles(200, SimDuration::us(2000)).unwrap();
        for c in 0..6 {
            let (pushes, pops, over, under) = sys.fifo_stats(ChannelId(c));
            assert!(pushes > 0, "ch{c} never carried a word");
            assert!(pops > 0, "ch{c} never delivered a word");
            assert_eq!(over, 0, "ch{c} overran");
            assert_eq!(under, 0, "ch{c} underran");
        }
    }

    #[test]
    fn chain_of_six_is_deterministic_under_delay_scaling() {
        let run = |ring_pct: u64| {
            let mut spec = chain_spec(6);
            for r in &mut spec.rings {
                r.delay_fwd = r.delay_fwd.percent(ring_pct);
                r.delay_back = r.delay_back.percent(ring_pct);
            }
            let mut sys = build_e1(spec, 0, 80);
            let out = sys
                .run_until_cycles(80, SimDuration::us(4000))
                .expect("chain run");
            assert_eq!(out, RunOutcome::Reached);
            (0..6)
                .map(|i| sys.io_trace(SbId(i)).digest())
                .collect::<Vec<_>>()
        };
        let nominal = run(100);
        assert_eq!(run(50), nominal);
        assert_eq!(run(200), nominal);
    }

    #[test]
    fn closed_ring_of_five_runs_without_deadlock() {
        // The static rule is conservative: it flags the minimal matched
        // configuration as *potentially* deadlocking (its worst-case
        // round-trip bound exceeds the matched minimum) …
        let spec = closed_ring_spec(5);
        let analysis = crate::deadlock::analyze(&spec, ScaleRange::NOMINAL);
        assert!(!analysis.deadlock_free, "expected a conservative flag");
        // … yet the matched nominal is empirically live (tokens are
        // always on time, so nothing ever stalls) …
        let mut sys = build_e1(spec.clone(), 0, 10);
        let out = sys
            .run_until_cycles(120, SimDuration::us(4000))
            .expect("ring run");
        assert_eq!(out, RunOutcome::Reached);
        // … and the prevention rule produces a configuration that is
        // both provably and empirically deadlock-free.
        let fixed = crate::deadlock::apply_prevention_rule(spec, ScaleRange::NOMINAL);
        assert!(crate::deadlock::analyze(&fixed, ScaleRange::NOMINAL).deadlock_free);
        let mut sys = build_e1(fixed, 0, 10);
        let out = sys
            .run_until_cycles(120, SimDuration::us(4000))
            .expect("fixed ring run");
        assert_eq!(out, RunOutcome::Reached);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn chain_needs_two_sbs() {
        let _ = chain_spec(1);
    }

    #[test]
    fn mixer_is_deterministic() {
        use crate::logic::{InputView, OutputSlot};
        let run = || {
            let mut m = MixerLogic::new(5);
            let mut out = Vec::new();
            for cycle in 0..50 {
                let inputs = [InputView {
                    data: if cycle % 3 == 0 { Some(cycle) } else { None },
                    enabled: true,
                    empty: false,
                }];
                let mut slots = [OutputSlot {
                    can_send: cycle % 2 == 0,
                    word: None,
                }];
                m.tick(cycle, &mut SbIo::new(&inputs, &mut slots));
                out.push(slots[0].word);
            }
            out
        };
        assert_eq!(run(), run());
    }
}
