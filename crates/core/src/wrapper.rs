//! The synchro-tokens wrapper (paper Figure 1B) as a simulation component.
//!
//! One [`SbWrapper`] per synchronous block owns:
//!
//! * a [`NodeFsm`] per token ring the SB participates in,
//! * the SB's input/output channel interfaces,
//! * the `clken` output (the AND of all nodes' clock enables) that
//!   controls the SB's stoppable clock,
//! * the user's [`SyncLogic`] and its per-cycle I/O views,
//! * the [`SbIoTrace`] determinism record.
//!
//! A single component orchestrates all of this so that the ordering of
//! intra-edge activity (read interfaces → tick logic → transmit → step
//! nodes) is explicit and deterministic rather than an accident of
//! component scheduling.
//!
//! The wrapper also implements the **bypass mode** used as the paper's
//! nondeterministic baseline: wrapper control is defeated (everything
//! always enabled, the clock never stops) and the FIFO `head_valid` is
//! sampled through a modelled two-flop synchronizer.

use crate::faults::{DataAction, FaultInjector, TokenPassAction};
use crate::iotrace::{SbIoTrace, TraceRow};
use crate::logic::{InputView, OutputSlot, SbIo, SyncLogic};
use crate::node::{NodeFsm, NodeFsmSnapshot, TokenAction};
use crate::spec::{ChannelId, RingId, SbId};
use st_channel::FifoPorts;
use st_sim::prelude::*;
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

/// Delay from driving bundled data to toggling the matching request, and
/// from reading a head word to toggling the acknowledge.
pub(crate) const BUNDLE_DELAY: SimDuration = SimDuration::fs(1000);

/// Placeholder word recorded when bypass mode reads a bus that is not
/// actually carrying valid data (a metastability ghost read).
const GARBAGE_WORD: u64 = 0xDEAD_DEAD_DEAD_DEAD;

/// How the wrapper treats its control machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrapperMode {
    /// Full synchro-tokens control (deterministic).
    SynchroTokens,
    /// Control defeated: interfaces always enabled, clock never stopped,
    /// inputs sampled through a two-flop synchronizer with the given
    /// metastability window (nondeterministic baseline).
    Bypass {
        /// Setup/hold window of the modelled synchronizer flops.
        window: SimDuration,
    },
}

/// One token-ring node's wiring.
#[derive(Debug)]
pub(crate) struct NodeBinding {
    pub ring: RingId,
    pub fsm: NodeFsm,
    /// Toggle input carrying the incoming token.
    pub token_in: BitSignal,
    prev_token_in: Bit,
    /// The peer node's `token_in`, which this node toggles to pass.
    pub peer_token_in: BitSignal,
    /// Node output delay + ring wire delay to the peer.
    pub pass_delay: SimDuration,
    pass_parity: bool,
    /// True when this node's *outgoing* passes travel toward the ring's
    /// initial holder (i.e. this is the peer-side node). Identifies the
    /// fault-injection unit for token faults.
    pub to_holder: bool,
    /// Optional per-node observability signals (Figure 2 waveforms).
    pub observe: Option<NodeObserve>,
}

impl NodeBinding {
    pub(crate) fn new(
        ring: RingId,
        fsm: NodeFsm,
        token_in: BitSignal,
        peer_token_in: BitSignal,
        pass_delay: SimDuration,
        to_holder: bool,
    ) -> Self {
        NodeBinding {
            ring,
            fsm,
            token_in,
            prev_token_in: Bit::X,
            peer_token_in,
            pass_delay,
            pass_parity: false,
            to_holder,
            observe: None,
        }
    }

    pub(crate) fn with_observe(mut self, observe: NodeObserve) -> Self {
        self.observe = Some(observe);
        self
    }
}

/// Debug/trace signals exposing a node's internals (used to regenerate
/// the paper's Figure 2).
#[derive(Debug, Clone, Copy)]
pub struct NodeObserve {
    /// Interface-enable (`sbena`) level for this node.
    pub sbena: BitSignal,
    /// Hold counter value (driven each cycle).
    pub hold_ctr: WordSignal,
    /// Recycle counter value (driven each cycle).
    pub recycle_ctr: WordSignal,
}

/// An input channel endpoint.
#[derive(Debug)]
pub(crate) struct InputBinding {
    #[allow(dead_code)] // kept for diagnostics and future P1500 hooks
    pub channel: ChannelId,
    /// Index into the wrapper's node list.
    pub node_idx: usize,
    pub ports: FifoPorts,
    ack_parity: bool,
}

impl InputBinding {
    pub(crate) fn new(channel: ChannelId, node_idx: usize, ports: FifoPorts) -> Self {
        InputBinding {
            channel,
            node_idx,
            ports,
            ack_parity: false,
        }
    }
}

/// An output channel endpoint.
#[derive(Debug)]
pub(crate) struct OutputBinding {
    #[allow(dead_code)] // kept for diagnostics and future P1500 hooks
    pub channel: ChannelId,
    pub node_idx: usize,
    pub ports: FifoPorts,
    req_parity: bool,
}

impl OutputBinding {
    pub(crate) fn new(channel: ChannelId, node_idx: usize, ports: FifoPorts) -> Self {
        OutputBinding {
            channel,
            node_idx,
            ports,
            req_parity: false,
        }
    }
}

/// A complete dump of an [`SbWrapper`]'s dynamic state, used by
/// checkpointing. Wiring (signals, ports, delays) is rebuilt from the
/// spec on resume; only values that evolve during simulation appear
/// here.
#[derive(Debug, Clone)]
pub(crate) struct WrapperSnapshot {
    pub prev_clk: Bit,
    pub cycle: u64,
    pub trace: SbIoTrace,
    pub dropped_words: u64,
    pub metastable_samples: u64,
    pub last_edge: Option<SimTime>,
    pub timing_violations: u64,
    pub edge_times: Vec<SimTime>,
    /// Per node: FSM state, last observed `token_in` level, outgoing
    /// pass parity.
    pub nodes: Vec<(NodeFsmSnapshot, Bit, bool)>,
    pub input_ack_parity: Vec<bool>,
    pub output_req_parity: Vec<bool>,
    /// Opaque logic state from [`SyncLogic::save_state`].
    pub logic: Vec<u8>,
}

/// Two-flop synchronizer state for one bypass-mode input.
#[derive(Debug, Default, Clone, Copy)]
struct BypassInput {
    last_valid_change: SimTime,
    stage1: bool,
    stage2: bool,
}

/// The wrapper component. Constructed by
/// [`SystemBuilder`](crate::system::SystemBuilder); inspected after runs
/// through [`System`](crate::system::System) accessors.
pub struct SbWrapper {
    sb: SbId,
    mode: WrapperMode,
    logic: Box<dyn SyncLogic>,
    clk: BitSignal,
    clken: BitSignal,
    prev_clk: Bit,
    cycle: u64,
    nodes: Vec<NodeBinding>,
    inputs: Vec<InputBinding>,
    outputs: Vec<OutputBinding>,
    trace: SbIoTrace,
    bypass_inputs: Vec<BypassInput>,
    /// Words the logic tried to send while the channel could not accept.
    dropped_words: u64,
    /// Bypass-mode samples that fell in the metastability window.
    metastable_samples: u64,
    /// Modelled critical-path delay; cycles shorter than this corrupt
    /// the block's outputs (deterministically).
    logic_delay: SimDuration,
    /// Wall-clock instant of the previous rising edge.
    last_edge: Option<SimTime>,
    /// Setup violations taken (cycle shorter than `logic_delay`).
    timing_violations: u64,
    /// Wall-clock time of each rising edge (capped like the I/O trace);
    /// pairs with trace rows to time-stamp transmitted/received words.
    edge_times: Vec<SimTime>,
    edge_times_cap: usize,
    /// Protocol-layer fault injector, shared by every wrapper of the
    /// system so occurrence counters are global per unit.
    faults: Option<Rc<RefCell<FaultInjector>>>,
}

impl std::fmt::Debug for SbWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SbWrapper")
            .field("sb", &self.sb)
            .field("mode", &self.mode)
            .field("cycle", &self.cycle)
            .field("nodes", &self.nodes.len())
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .finish()
    }
}

impl SbWrapper {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        sb: SbId,
        mode: WrapperMode,
        logic: Box<dyn SyncLogic>,
        clk: BitSignal,
        clken: BitSignal,
        nodes: Vec<NodeBinding>,
        inputs: Vec<InputBinding>,
        outputs: Vec<OutputBinding>,
        trace_limit: usize,
    ) -> Self {
        let n_inputs = inputs.len();
        SbWrapper {
            sb,
            mode,
            logic,
            clk,
            clken,
            prev_clk: Bit::X,
            cycle: 0,
            nodes,
            inputs,
            outputs,
            trace: SbIoTrace::with_limit(trace_limit),
            bypass_inputs: vec![BypassInput::default(); n_inputs],
            dropped_words: 0,
            metastable_samples: 0,
            logic_delay: SimDuration::ZERO,
            last_edge: None,
            timing_violations: 0,
            edge_times: Vec::new(),
            edge_times_cap: if trace_limit == 0 {
                1 << 20
            } else {
                trace_limit
            },
            faults: None,
        }
    }

    /// Attaches the system-wide protocol fault injector (builder-time).
    pub(crate) fn with_faults(mut self, faults: Rc<RefCell<FaultInjector>>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Wall-clock times of the recorded rising edges (indexed by local
    /// cycle; capped at the trace limit).
    pub fn edge_times(&self) -> &[SimTime] {
        &self.edge_times
    }

    /// Sets the modelled critical-path delay (builder-time).
    pub(crate) fn with_logic_delay(mut self, delay: SimDuration) -> Self {
        self.logic_delay = delay;
        self
    }

    /// Setup violations taken so far.
    pub fn timing_violations(&self) -> u64 {
        self.timing_violations
    }

    /// The SB this wrapper belongs to.
    pub fn sb(&self) -> SbId {
        self.sb
    }

    /// Local cycles elapsed (rising edges seen).
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// The captured I/O trace.
    pub fn trace(&self) -> &SbIoTrace {
        &self.trace
    }

    /// Words the logic attempted to send on a blocked channel.
    pub fn dropped_words(&self) -> u64 {
        self.dropped_words
    }

    /// Bypass-mode metastable samples taken.
    pub fn metastable_samples(&self) -> u64 {
        self.metastable_samples
    }

    /// The node FSM for `ring`, if this SB has one.
    pub fn node(&self, ring: RingId) -> Option<&NodeFsm> {
        self.nodes.iter().find(|n| n.ring == ring).map(|n| &n.fsm)
    }

    /// Mutable node access (debug hooks).
    pub fn node_mut(&mut self, ring: RingId) -> Option<&mut NodeFsm> {
        self.nodes
            .iter_mut()
            .find(|n| n.ring == ring)
            .map(|n| &mut n.fsm)
    }

    /// Sets the §4.2 indefinite-hold hook on every node of this wrapper.
    pub fn set_hold_all_tokens(&mut self, on: bool) {
        for n in &mut self.nodes {
            n.fsm.set_hold_indefinitely(on);
        }
    }

    /// True when every node currently allows the clock to run.
    pub fn clock_enabled(&self) -> bool {
        self.nodes.iter().all(|n| n.fsm.clock_enabled())
    }

    /// The user logic as `Any`, for downcasting to its concrete type.
    pub fn logic_any(&self) -> &dyn Any {
        let logic: &dyn SyncLogic = self.logic.as_ref();
        logic as &dyn Any
    }

    /// Mutable `Any` access to the user logic (debug state injection).
    pub fn logic_any_mut(&mut self) -> &mut dyn Any {
        let logic: &mut dyn SyncLogic = self.logic.as_mut();
        logic as &mut dyn Any
    }

    /// The shared protocol fault injector, if one is installed.
    pub(crate) fn faults_rc(&self) -> Option<&Rc<RefCell<FaultInjector>>> {
        self.faults.as_ref()
    }

    /// Captures the wrapper's complete dynamic state; `None` when the
    /// attached logic does not implement [`SyncLogic::save_state`].
    pub(crate) fn snapshot(&self) -> Option<WrapperSnapshot> {
        let logic = self.logic.save_state()?;
        Some(WrapperSnapshot {
            prev_clk: self.prev_clk,
            cycle: self.cycle,
            trace: self.trace.clone(),
            dropped_words: self.dropped_words,
            metastable_samples: self.metastable_samples,
            last_edge: self.last_edge,
            timing_violations: self.timing_violations,
            edge_times: self.edge_times.clone(),
            nodes: self
                .nodes
                .iter()
                .map(|n| (n.fsm.snapshot(), n.prev_token_in, n.pass_parity))
                .collect(),
            input_ack_parity: self.inputs.iter().map(|i| i.ack_parity).collect(),
            output_req_parity: self.outputs.iter().map(|o| o.req_parity).collect(),
            logic,
        })
    }

    /// Overwrites dynamic state from a snapshot taken on an identically
    /// built wrapper. Returns `false` on a shape mismatch (different
    /// topology or incompatible logic bytes).
    pub(crate) fn restore(&mut self, snap: &WrapperSnapshot) -> bool {
        if snap.nodes.len() != self.nodes.len()
            || snap.input_ack_parity.len() != self.inputs.len()
            || snap.output_req_parity.len() != self.outputs.len()
            || !self.logic.restore_state(&snap.logic)
        {
            return false;
        }
        self.prev_clk = snap.prev_clk;
        self.cycle = snap.cycle;
        self.trace = snap.trace.clone();
        self.dropped_words = snap.dropped_words;
        self.metastable_samples = snap.metastable_samples;
        self.last_edge = snap.last_edge;
        self.timing_violations = snap.timing_violations;
        self.edge_times = snap.edge_times.clone();
        for (n, (fsm, prev_tok, parity)) in self.nodes.iter_mut().zip(&snap.nodes) {
            n.fsm.restore(fsm);
            n.prev_token_in = *prev_tok;
            n.pass_parity = *parity;
        }
        for (i, p) in self.inputs.iter_mut().zip(&snap.input_ack_parity) {
            i.ack_parity = *p;
        }
        for (o, p) in self.outputs.iter_mut().zip(&snap.output_req_parity) {
            o.req_parity = *p;
        }
        true
    }

    fn is_bypass(&self) -> bool {
        matches!(self.mode, WrapperMode::Bypass { .. })
    }

    fn drive_clken(&self, ctx: &mut Ctx<'_>) {
        let ena = self.is_bypass() || self.clock_enabled();
        ctx.drive_bit(self.clken, ena, SimDuration::ZERO);
    }

    fn drive_observe(&self, ctx: &mut Ctx<'_>) {
        for n in &self.nodes {
            if let Some(obs) = n.observe {
                ctx.drive_bit(obs.sbena, n.fsm.interfaces_enabled(), SimDuration::ZERO);
                ctx.drive_word(obs.hold_ctr, u64::from(n.fsm.hold_ctr()), SimDuration::ZERO);
                ctx.drive_word(
                    obs.recycle_ctr,
                    u64::from(n.fsm.recycle_ctr()),
                    SimDuration::ZERO,
                );
            }
        }
    }

    fn handle_posedge(&mut self, ctx: &mut Ctx<'_>) {
        // 0. Setup-time check against the modelled critical path: a cycle
        // shorter than `logic_delay` corrupts this cycle's outputs. The
        // corruption is a pure function of the data, so it is *visible*
        // to the deterministic trace comparison — exactly what a shmoo
        // run needs to find the failing frequency.
        let violated = match self.last_edge {
            Some(prev) if !self.logic_delay.is_zero() => ctx.now().since(prev) < self.logic_delay,
            _ => false,
        };
        self.last_edge = Some(ctx.now());
        if violated {
            self.timing_violations += 1;
        }
        if self.edge_times.len() < self.edge_times_cap {
            self.edge_times.push(ctx.now());
        }

        // 1. Enable windows for *this* cycle (pre-step FSM state).
        let enabled: Vec<bool> = self
            .nodes
            .iter()
            .map(|n| n.fsm.interfaces_enabled())
            .collect();
        let bypass_window = match self.mode {
            WrapperMode::Bypass { window } => Some(window),
            WrapperMode::SynchroTokens => None,
        };

        // 2. Input interfaces: what does each channel present this cycle?
        let mut views = Vec::with_capacity(self.inputs.len());
        let mut pops = vec![false; self.inputs.len()];
        for (i, inp) in self.inputs.iter().enumerate() {
            let ena = bypass_window.is_some() || enabled[inp.node_idx];
            let raw_valid = ctx.bit(inp.ports.head_valid).is_one();
            let view = if let Some(window) = bypass_window {
                // Two-flop synchronizer on `valid`, with a metastability
                // window resolved by the seeded RNG.
                let bp = &mut self.bypass_inputs[i];
                let in_window = ctx.now().saturating_since(bp.last_valid_change) < window;
                let sampled = if in_window {
                    self.metastable_samples += 1;
                    use rand::Rng;
                    ctx.rng().gen::<bool>()
                } else {
                    raw_valid
                };
                let visible = bp.stage2;
                bp.stage2 = bp.stage1;
                bp.stage1 = sampled;
                if visible {
                    pops[i] = true;
                    InputView {
                        data: Some(ctx.word(inp.ports.head_data).unwrap_or(GARBAGE_WORD)),
                        enabled: true,
                        empty: false,
                    }
                } else {
                    InputView {
                        data: None,
                        enabled: true,
                        empty: true,
                    }
                }
            } else if ena && raw_valid {
                pops[i] = true;
                InputView {
                    data: Some(
                        ctx.word(inp.ports.head_data)
                            .expect("valid head must carry data"),
                    ),
                    enabled: true,
                    empty: false,
                }
            } else {
                InputView {
                    data: None,
                    enabled: ena,
                    empty: ena,
                }
            };
            views.push(view);
        }

        // 3. Output availability.
        let mut slots: Vec<OutputSlot> = self
            .outputs
            .iter()
            .map(|out| OutputSlot {
                can_send: (bypass_window.is_some() || enabled[out.node_idx])
                    && ctx.bit(out.ports.full).is_zero(),
                word: None,
            })
            .collect();

        // 4. The synchronous logic computes.
        {
            let mut io = SbIo::new(&views, &mut slots);
            self.logic.tick(self.cycle, &mut io);
        }

        // 5. Transmit accepted words (bundled data before request).
        let faults = self.faults.as_ref();
        let mut writes = Vec::with_capacity(self.outputs.len());
        for (out, slot) in self.outputs.iter_mut().zip(&slots) {
            match slot.word.map(|w| if violated { w ^ 0x5A5A } else { w }) {
                Some(w) if slot.can_send => {
                    let action = faults
                        .map(|f| f.borrow_mut().on_push(out.channel))
                        .unwrap_or(DataAction::Deliver);
                    match action {
                        DataAction::Drop => {
                            // Request toggle lost on the wire: the logic
                            // believes it sent (the trace says so), the
                            // FIFO never sees it.
                        }
                        DataAction::Delay(extra) => {
                            ctx.drive_word(out.ports.put_data, w, extra);
                            out.req_parity = !out.req_parity;
                            ctx.drive_bit(out.ports.put_req, out.req_parity, BUNDLE_DELAY + extra);
                        }
                        DataAction::Deliver => {
                            ctx.drive_word(out.ports.put_data, w, SimDuration::ZERO);
                            out.req_parity = !out.req_parity;
                            ctx.drive_bit(out.ports.put_req, out.req_parity, BUNDLE_DELAY);
                        }
                    }
                    writes.push(Some(w));
                }
                Some(_) => {
                    self.dropped_words += 1;
                    writes.push(None);
                }
                None => writes.push(None),
            }
        }

        // 6. Acknowledge consumed words.
        for (inp, pop) in self.inputs.iter_mut().zip(&pops) {
            if *pop {
                let action = faults
                    .map(|f| f.borrow_mut().on_ack(inp.channel))
                    .unwrap_or(DataAction::Deliver);
                match action {
                    DataAction::Drop => {
                        // Acknowledge toggle lost: the FIFO head never
                        // pops, so the same word will be read again.
                    }
                    DataAction::Delay(extra) => {
                        inp.ack_parity = !inp.ack_parity;
                        ctx.drive_bit(inp.ports.get_ack, inp.ack_parity, BUNDLE_DELAY + extra);
                    }
                    DataAction::Deliver => {
                        inp.ack_parity = !inp.ack_parity;
                        ctx.drive_bit(inp.ports.get_ack, inp.ack_parity, BUNDLE_DELAY);
                    }
                }
            }
        }

        // 7. Node FSMs advance; tokens pass; clock enable updates.
        if !self.is_bypass() {
            let mut any_stop = false;
            for n in &mut self.nodes {
                let action = n.fsm.on_posedge();
                if action.pass_token {
                    let pass = faults
                        .map(|f| f.borrow_mut().on_token_pass(n.ring, n.to_holder))
                        .unwrap_or(TokenPassAction::Deliver);
                    match pass {
                        TokenPassAction::Drop => {
                            // Toggle lost on the ring: parity untouched, so
                            // the *next* pass still toggles the wire.
                        }
                        TokenPassAction::Delay(extra) => {
                            n.pass_parity = !n.pass_parity;
                            ctx.drive_bit(n.peer_token_in, n.pass_parity, n.pass_delay + extra);
                        }
                        TokenPassAction::Duplicate(extra) => {
                            // Two toggles = two arrivals at the receiver;
                            // net parity on this side is unchanged.
                            ctx.drive_bit(n.peer_token_in, !n.pass_parity, n.pass_delay);
                            ctx.drive_bit(n.peer_token_in, n.pass_parity, n.pass_delay + extra);
                        }
                        TokenPassAction::Deliver => {
                            n.pass_parity = !n.pass_parity;
                            ctx.drive_bit(n.peer_token_in, n.pass_parity, n.pass_delay);
                        }
                    }
                }
                any_stop |= action.stop_clock;
            }
            if any_stop {
                self.drive_clken(ctx);
            }
        }
        self.drive_observe(ctx);

        // 8. Record the determinism trace row.
        self.trace.record(TraceRow {
            cycle: self.cycle,
            reads: views.iter().map(|v| v.data).collect(),
            writes,
        });
        self.cycle += 1;
    }

    fn handle_token(&mut self, ctx: &mut Ctx<'_>, sig: SignalId) {
        let mut restart = false;
        for n in &mut self.nodes {
            if n.token_in.id() != sig {
                continue;
            }
            let v = ctx.bit(n.token_in);
            if v == n.prev_token_in {
                continue;
            }
            n.prev_token_in = v;
            if n.fsm.token_arrived() == TokenAction::RestartClock {
                restart = true;
            }
        }
        if restart {
            self.drive_clken(ctx);
        }
    }
}

impl Component for SbWrapper {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => {
                self.drive_clken(ctx);
                self.drive_observe(ctx);
            }
            Wake::Signal(sig) if sig == self.clk.id() => {
                let v = ctx.bit(self.clk);
                let rising = !self.prev_clk.is_one() && v.is_one();
                self.prev_clk = v;
                if rising {
                    self.handle_posedge(ctx);
                }
            }
            Wake::Signal(sig) => {
                // Token wires, or (bypass) head_valid edges for the
                // synchronizer's window bookkeeping.
                if self.is_bypass() {
                    for (i, inp) in self.inputs.iter().enumerate() {
                        if inp.ports.head_valid.id() == sig {
                            self.bypass_inputs[i].last_valid_change = ctx.now();
                        }
                    }
                }
                self.handle_token(ctx, sig);
            }
            _ => {}
        }
    }
}
