//! Canonical engine-state checkpoints: snapshot a run at a cycle
//! boundary, serialize it byte-stably, and resume it later — on the same
//! backend — with bit-identical continuation.
//!
//! The paper's determinism invariant makes this sound: under
//! synchro-tokens every SB's I/O sequence is a pure function of its
//! local cycle count, so the *entire* engine state at any instant is a
//! pure function of (system configuration, simulated time). A
//! checkpoint is therefore content-addressable — two runs of the same
//! configuration snapshot to byte-identical `STCP` blobs — and a
//! campaign whose variants share a nominal prefix can fork from one
//! shared checkpoint instead of re-simulating from cycle 0
//! (`st_testkit`'s prefix-fork planner; the `campaign_fork` bench).
//!
//! # Format
//!
//! A checkpoint serializes to a versioned, byte-stable blob:
//!
//! ```text
//! "STCP" | version u8 = 1 | backend u8 | spec_hash [u8; 16]
//!        | cycle u64 | now u64 | payload_len u64 | payload ...
//! ```
//!
//! all integers little-endian. `backend` tags the engine that produced
//! the payload (`0` = event kernel, `1` = compiled typed-event engine);
//! resume never crosses backends — the two engines are observationally
//! byte-identical but their internal state shapes are not, and a
//! cross-backend transplant would silently discard in-flight events.
//! `spec_hash` is a 16-byte content key over the canonical encoding of
//! the *configuration*: [`SystemSpec`], kernel seed, trace limit and the
//! attached [`FaultPlan`]. Resume recomputes the hash from the supplied
//! builder and refuses a mismatch, so a checkpoint can never be
//! transplanted onto a differently-configured system.
//!
//! The payload is the backend's own dump of every piece of dynamic
//! state: pending event queue (sorted by `(time, seq)` — exactly fire
//! order), clock phases, node FSMs, wrapper parities and traces, FIFO
//! ladders, fault-injection occurrence counters, and each SB's logic
//! state via [`SyncLogic::save_state`](crate::logic::SyncLogic::save_state).
//!
//! # Content hashing
//!
//! [`Checkpoint::content_hash`] uses the same double-FNV/mix64
//! construction as `st-serve`'s result-store content keys, so a serve
//! deployment can cache checkpoints under the identical key scheme it
//! already uses for traces (keyed by `(spec_hash, cycle)`).
//!
//! # Support envelope
//!
//! Checkpointing is gated to [`WrapperMode::SynchroTokens`] without node
//! observability — the deterministic envelope where the kernel RNG is
//! never drawn and the waveform trace buffer stays empty, so neither
//! needs to be serialized. Bypass mode (which consumes RNG state per
//! metastable sample) and observed builds refuse with
//! [`CheckpointError::Unsupported`].

use crate::faults::{AnalogFault, Fault, FaultPlan, SeuTarget};
use crate::iotrace::{CanonError, SbIoTrace};
use crate::node::NodeFsmSnapshot;
use crate::spec::{NodeParams, SystemSpec};
use crate::wrapper::WrapperSnapshot;
use st_channel::FifoSnapshot;
use st_sim::prelude::*;
use st_sim::{KernelEvent, KernelEventKind, KernelSnapshot};
use std::fmt;

/// Serialization magic.
const MAGIC: [u8; 4] = *b"STCP";
/// Current format version.
const VERSION: u8 = 1;

// --- serve-compatible content keys --------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

fn fnv1a64_seeded(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The 16-byte content key of `bytes` — byte-compatible with
/// `st-serve`'s result-store `ContentKey::of`, so checkpoints and traces
/// share one cache key scheme.
pub fn content_key16(bytes: &[u8]) -> [u8; 16] {
    let len = bytes.len() as u64;
    let a = mix64(fnv1a64_seeded(FNV_OFFSET, bytes) ^ len);
    let b = mix64(fnv1a64_seeded(FNV_OFFSET ^ GOLDEN, bytes).wrapping_add(len));
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    out
}

/// Lowercase hex rendering of a 16-byte key.
pub fn key_hex(key: &[u8; 16]) -> String {
    let mut s = String::with_capacity(32);
    for b in key {
        use fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

// --- encoder / decoder ---------------------------------------------------

/// Byte-writer for the canonical encoding (all integers little-endian).
#[derive(Debug, Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    pub fn time(&mut self, t: SimTime) {
        self.u64(t.as_fs());
    }

    pub fn dur(&mut self, d: SimDuration) {
        self.u64(d.as_fs());
    }

    pub fn opt_time(&mut self, t: Option<SimTime>) {
        match t {
            None => self.u8(0),
            Some(t) => {
                self.u8(1);
                self.time(t);
            }
        }
    }

    pub fn bit(&mut self, b: Bit) {
        self.u8(match b {
            Bit::Zero => 0,
            Bit::One => 1,
            Bit::X => 2,
        });
    }

    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Bit(b) => self.bit(*b),
            Value::Word(w) => {
                self.u8(3);
                self.u64(*w);
            }
            Value::WordX => self.u8(4),
        }
    }

    pub fn u64s(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u64(v);
        }
    }

    pub fn times(&mut self, ts: &[SimTime]) {
        self.u32(ts.len() as u32);
        for &t in ts {
            self.time(t);
        }
    }

    pub fn bools(&mut self, bs: &[bool]) {
        self.u32(bs.len() as u32);
        for &b in bs {
            self.bool(b);
        }
    }
}

/// Byte-reader for the canonical encoding (mirrors `iotrace`'s reader,
/// reusing its [`CanonError`] vocabulary).
pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
}

impl<'a> Dec<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CanonError> {
        if self.bytes.len() < n {
            return Err(CanonError::Truncated);
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    pub fn finish(self) -> Result<(), CanonError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(CanonError::TrailingBytes(self.bytes.len()))
        }
    }

    pub fn u8(&mut self) -> Result<u8, CanonError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, CanonError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CanonError::BadTag(t)),
        }
    }

    pub fn u32(&mut self) -> Result<u32, CanonError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CanonError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn u128(&mut self) -> Result<u128, CanonError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], CanonError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    pub fn time(&mut self) -> Result<SimTime, CanonError> {
        Ok(SimTime::from_fs(self.u64()?))
    }

    pub fn opt_time(&mut self) -> Result<Option<SimTime>, CanonError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.time()?)),
            t => Err(CanonError::BadTag(t)),
        }
    }

    pub fn bit(&mut self) -> Result<Bit, CanonError> {
        match self.u8()? {
            0 => Ok(Bit::Zero),
            1 => Ok(Bit::One),
            2 => Ok(Bit::X),
            t => Err(CanonError::BadTag(t)),
        }
    }

    pub fn value(&mut self) -> Result<Value, CanonError> {
        match self.u8()? {
            0 => Ok(Value::Bit(Bit::Zero)),
            1 => Ok(Value::Bit(Bit::One)),
            2 => Ok(Value::Bit(Bit::X)),
            3 => Ok(Value::Word(self.u64()?)),
            4 => Ok(Value::WordX),
            t => Err(CanonError::BadTag(t)),
        }
    }

    pub fn u64s(&mut self) -> Result<Vec<u64>, CanonError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    pub fn times(&mut self) -> Result<Vec<SimTime>, CanonError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.time()?);
        }
        Ok(out)
    }

    pub fn bools(&mut self) -> Result<Vec<bool>, CanonError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.bool()?);
        }
        Ok(out)
    }
}

// --- public types --------------------------------------------------------

/// The engine a checkpoint was taken on (and must be resumed on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointBackend {
    /// The general event kernel ([`crate::system::System`]).
    Event,
    /// The compiled typed-event engine
    /// ([`crate::compiled_system::CompiledSystem`]).
    Compiled,
}

impl CheckpointBackend {
    fn tag(self) -> u8 {
        match self {
            CheckpointBackend::Event => 0,
            CheckpointBackend::Compiled => 1,
        }
    }

    fn from_tag(t: u8) -> Result<Self, CanonError> {
        match t {
            0 => Ok(CheckpointBackend::Event),
            1 => Ok(CheckpointBackend::Compiled),
            t => Err(CanonError::BadTag(t)),
        }
    }
}

impl fmt::Display for CheckpointBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointBackend::Event => write!(f, "event"),
            CheckpointBackend::Compiled => write!(f, "compiled"),
        }
    }
}

/// Why a checkpoint or resume was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The system is outside the checkpointable envelope (bypass mode,
    /// node observability, or a logic without
    /// [`SyncLogic::save_state`](crate::logic::SyncLogic::save_state)).
    Unsupported(&'static str),
    /// The resume builder's configuration hash differs from the
    /// checkpoint's `spec_hash` (or state shapes mismatch it).
    SpecMismatch,
    /// The checkpoint was taken on a different backend than the one
    /// asked to resume it.
    BackendMismatch,
    /// The serialized bytes are malformed.
    Corrupt(CanonError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Unsupported(what) => {
                write!(f, "system not checkpointable: {what}")
            }
            CheckpointError::SpecMismatch => {
                write!(f, "checkpoint belongs to a different configuration")
            }
            CheckpointError::BackendMismatch => {
                write!(f, "checkpoint belongs to a different backend")
            }
            CheckpointError::Corrupt(e) => write!(f, "corrupt checkpoint: {e:?}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CanonError> for CheckpointError {
    fn from(e: CanonError) -> Self {
        CheckpointError::Corrupt(e)
    }
}

/// A complete, canonical, resumable engine snapshot.
///
/// Obtain one from
/// [`System::checkpoint`](crate::system::System::checkpoint),
/// [`CompiledSystem::checkpoint`](crate::compiled_system::CompiledSystem::checkpoint)
/// or [`AnySystem::checkpoint`](crate::compiled_system::AnySystem::checkpoint);
/// turn it back into a running system with the matching `resume`
/// constructor plus an identically-configured builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    backend: CheckpointBackend,
    spec_hash: [u8; 16],
    cycle: u64,
    now: SimTime,
    payload: Vec<u8>,
}

impl Checkpoint {
    pub(crate) fn new(
        backend: CheckpointBackend,
        spec_hash: [u8; 16],
        cycle: u64,
        now: SimTime,
        payload: Vec<u8>,
    ) -> Self {
        Checkpoint {
            backend,
            spec_hash,
            cycle,
            now,
            payload,
        }
    }

    /// The backend that produced (and can resume) this checkpoint.
    pub fn backend(&self) -> CheckpointBackend {
        self.backend
    }

    /// The configuration content key the checkpoint is bound to.
    pub fn spec_hash(&self) -> [u8; 16] {
        self.spec_hash
    }

    /// The minimum local cycle count across SBs at snapshot time.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Simulated time at snapshot time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The canonical serialized form. Byte-stable: serializing,
    /// deserializing and serializing again yields identical bytes.
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.buf.extend_from_slice(&MAGIC);
        e.u8(VERSION);
        e.u8(self.backend.tag());
        e.buf.extend_from_slice(&self.spec_hash);
        e.u64(self.cycle);
        e.time(self.now);
        e.u64(self.payload.len() as u64);
        e.buf.extend_from_slice(&self.payload);
        e.into_bytes()
    }

    /// Decodes a canonical blob.
    ///
    /// # Errors
    ///
    /// Returns a [`CanonError`] describing the first malformation.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<Checkpoint, CanonError> {
        let mut d = Dec::new(bytes);
        if d.take(4)? != MAGIC {
            return Err(CanonError::BadMagic);
        }
        let version = d.u8()?;
        if version != VERSION {
            return Err(CanonError::BadVersion(version));
        }
        let backend = CheckpointBackend::from_tag(d.u8()?)?;
        let spec_hash: [u8; 16] = d.take(16)?.try_into().unwrap();
        let cycle = d.u64()?;
        let now = d.time()?;
        let payload_len = d.u64()? as usize;
        let payload = d.take(payload_len)?.to_vec();
        d.finish()?;
        Ok(Checkpoint {
            backend,
            spec_hash,
            cycle,
            now,
            payload,
        })
    }

    /// The serve-compatible content key of the canonical blob. Because
    /// the engines are deterministic, two independent runs of the same
    /// configuration produce checkpoints with identical hashes at the
    /// same snapshot point.
    pub fn content_hash(&self) -> [u8; 16] {
        content_key16(&self.to_canonical_bytes())
    }

    /// Hex rendering of [`content_hash`](Self::content_hash).
    pub fn content_hex(&self) -> String {
        key_hex(&self.content_hash())
    }

    /// Decodes the payload once, for repeated resumes.
    ///
    /// `resume` accepts a [`Checkpoint`] directly, but pays the payload
    /// decode on every call — per-element codec work that scales with
    /// the snapshot's history (traces, edge times). A prefix-fork
    /// campaign resumes *many* variants from *one* blob; decoding once
    /// and resuming from the [`DecodedCheckpoint`] makes the per-variant
    /// cost a plain memcpy of the decoded state.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] for malformed payload bytes.
    pub fn decode(&self) -> Result<DecodedCheckpoint, CheckpointError> {
        let state = match self.backend {
            CheckpointBackend::Event => {
                let mut dump = decode_event_payload(&self.payload)?;
                // The kernel snapshot carries its `now` in the header.
                dump.kernel.now = self.now;
                DecodedState::Event(dump)
            }
            CheckpointBackend::Compiled => {
                DecodedState::Compiled(decode_compiled_payload(&self.payload)?)
            }
        };
        Ok(DecodedCheckpoint {
            backend: self.backend,
            spec_hash: self.spec_hash,
            cycle: self.cycle,
            now: self.now,
            state,
        })
    }
}

/// A [`Checkpoint`] whose payload has been decoded into engine state,
/// ready to restore without re-parsing (see [`Checkpoint::decode`]).
pub struct DecodedCheckpoint {
    backend: CheckpointBackend,
    spec_hash: [u8; 16],
    cycle: u64,
    now: SimTime,
    pub(crate) state: DecodedState,
}

pub(crate) enum DecodedState {
    Event(EventStateDump),
    Compiled(CompiledStateDump),
}

impl DecodedCheckpoint {
    /// The backend that produced (and can resume) this checkpoint.
    pub fn backend(&self) -> CheckpointBackend {
        self.backend
    }

    /// The configuration content key the checkpoint is bound to.
    pub fn spec_hash(&self) -> [u8; 16] {
        self.spec_hash
    }

    /// The minimum local cycle count across SBs at snapshot time.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Simulated time at snapshot time.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

impl fmt::Debug for DecodedCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodedCheckpoint")
            .field("backend", &self.backend)
            .field("cycle", &self.cycle)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

// --- configuration hashing -----------------------------------------------

fn encode_node_params(e: &mut Enc, p: NodeParams) {
    e.u32(p.hold);
    e.u32(p.recycle);
}

fn encode_fault_plan(e: &mut Enc, plan: &FaultPlan) {
    e.u64(plan.seed);
    let AnalogFault {
        clock_jitter,
        clock_drift_step,
        clock_drift_cap,
        token_jitter,
        data_jitter,
    } = plan.analog;
    e.dur(clock_jitter);
    e.dur(clock_drift_step);
    e.dur(clock_drift_cap);
    e.dur(token_jitter);
    e.dur(data_jitter);
    e.u32(plan.protocol.len() as u32);
    for f in &plan.protocol {
        match *f {
            Fault::TokenLoss {
                ring,
                to_holder,
                nth,
            } => {
                e.u8(0);
                e.u32(ring.0 as u32);
                e.bool(to_holder);
                e.u64(nth);
            }
            Fault::TokenDup {
                ring,
                to_holder,
                nth,
                extra,
            } => {
                e.u8(1);
                e.u32(ring.0 as u32);
                e.bool(to_holder);
                e.u64(nth);
                e.dur(extra);
            }
            Fault::TokenDelay {
                ring,
                to_holder,
                nth,
                extra,
            } => {
                e.u8(2);
                e.u32(ring.0 as u32);
                e.bool(to_holder);
                e.u64(nth);
                e.dur(extra);
            }
            Fault::ReqDrop { channel, nth } => {
                e.u8(3);
                e.u32(channel.0 as u32);
                e.u64(nth);
            }
            Fault::AckDrop { channel, nth } => {
                e.u8(4);
                e.u32(channel.0 as u32);
                e.u64(nth);
            }
            Fault::ChannelStall {
                channel,
                nth,
                extra,
            } => {
                e.u8(5);
                e.u32(channel.0 as u32);
                e.u64(nth);
                e.dur(extra);
            }
        }
    }
    e.u32(plan.seu.len() as u32);
    for s in &plan.seu {
        e.u32(s.sb.0 as u32);
        e.u32(s.ring.0 as u32);
        e.u64(s.at_cycle);
        match s.target {
            SeuTarget::HoldBit(b) => {
                e.u8(0);
                e.u32(b);
            }
            SeuTarget::RecycleBit(b) => {
                e.u8(1);
                e.u32(b);
            }
            SeuTarget::TokenLatch => e.u8(2),
        }
    }
}

/// Canonical encoding of a full run configuration: spec, seed, trace
/// limit and fault plan. The [`content_key16`] of these bytes is the
/// `spec_hash` checkpoints are bound to.
pub fn encode_config(
    spec: &SystemSpec,
    seed: u64,
    trace_limit: usize,
    faults: Option<&FaultPlan>,
) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(spec.sbs.len() as u32);
    for sb in &spec.sbs {
        e.bytes(sb.name.as_bytes());
        e.dur(sb.period);
        e.dur(sb.logic_delay);
    }
    e.u32(spec.rings.len() as u32);
    for r in &spec.rings {
        e.u32(r.holder.0 as u32);
        e.u32(r.peer.0 as u32);
        encode_node_params(&mut e, r.holder_node);
        encode_node_params(&mut e, r.peer_node);
        e.dur(r.delay_fwd);
        e.dur(r.delay_back);
        match r.peer_initial_recycle {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                e.u32(v);
            }
        }
    }
    e.u32(spec.channels.len() as u32);
    for c in &spec.channels {
        e.u32(c.from.0 as u32);
        e.u32(c.to.0 as u32);
        e.u32(c.ring.0 as u32);
        e.u32(c.bits);
        e.u64(c.fifo_depth as u64);
        e.dur(c.stage_delay);
    }
    e.u64(seed);
    e.u64(trace_limit as u64);
    match faults {
        None => e.u8(0),
        Some(p) => {
            e.u8(1);
            encode_fault_plan(&mut e, p);
        }
    }
    e.into_bytes()
}

/// The 16-byte configuration content key (see [`encode_config`]).
pub fn config_hash(
    spec: &SystemSpec,
    seed: u64,
    trace_limit: usize,
    faults: Option<&FaultPlan>,
) -> [u8; 16] {
    content_key16(&encode_config(spec, seed, trace_limit, faults))
}

// --- event-backend payload -----------------------------------------------

/// Protocol fault-injector occurrence counters `(token, push, ack)`,
/// when an injector is installed.
pub(crate) type InjectorDump = Option<(Vec<u64>, Vec<u64>, Vec<u64>)>;

/// Everything the event backend needs to freeze: kernel, wrappers,
/// clocks, FIFOs, injector. Gathered by `System::checkpoint`, encoded
/// here.
pub(crate) struct EventStateDump {
    pub kernel: KernelSnapshot,
    pub wrappers: Vec<WrapperSnapshot>,
    /// Per clock: (parked, edges, stops).
    pub clocks: Vec<(bool, u64, u64)>,
    pub fifos: Vec<FifoSnapshot>,
    /// Protocol fault-injector occurrence counters, when installed.
    pub injector: InjectorDump,
}

fn encode_node_fsm(e: &mut Enc, n: &NodeFsmSnapshot) {
    encode_node_params(e, n.params);
    e.u8(match n.phase {
        crate::node::NodePhase::Holding => 0,
        crate::node::NodePhase::Recycling => 1,
        crate::node::NodePhase::Stopped => 2,
    });
    e.u32(n.hold_ctr);
    e.u32(n.recycle_ctr);
    e.bool(n.has_token);
    e.bool(n.hold_indefinitely);
    e.u64(n.passes);
    e.u64(n.stops);
    e.u64(n.early_tokens);
}

fn decode_node_fsm(d: &mut Dec<'_>) -> Result<NodeFsmSnapshot, CanonError> {
    let params = NodeParams::new(d.u32()?.max(1), d.u32()?.max(1));
    let phase = match d.u8()? {
        0 => crate::node::NodePhase::Holding,
        1 => crate::node::NodePhase::Recycling,
        2 => crate::node::NodePhase::Stopped,
        t => return Err(CanonError::BadTag(t)),
    };
    Ok(NodeFsmSnapshot {
        params,
        phase,
        hold_ctr: d.u32()?,
        recycle_ctr: d.u32()?,
        has_token: d.bool()?,
        hold_indefinitely: d.bool()?,
        passes: d.u64()?,
        stops: d.u64()?,
        early_tokens: d.u64()?,
    })
}

fn encode_trace(e: &mut Enc, t: &SbIoTrace) {
    e.bytes(&t.to_canonical_bytes());
}

fn decode_trace(d: &mut Dec<'_>) -> Result<SbIoTrace, CanonError> {
    SbIoTrace::from_canonical_bytes(d.bytes()?)
}

fn encode_injector(e: &mut Enc, injector: &InjectorDump) {
    match injector {
        None => e.u8(0),
        Some((tok, push, ack)) => {
            e.u8(1);
            e.u64s(tok);
            e.u64s(push);
            e.u64s(ack);
        }
    }
}

fn decode_injector(d: &mut Dec<'_>) -> Result<InjectorDump, CanonError> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some((d.u64s()?, d.u64s()?, d.u64s()?))),
        t => Err(CanonError::BadTag(t)),
    }
}

pub(crate) fn encode_event_payload(dump: &EventStateDump) -> Vec<u8> {
    let mut e = Enc::new();
    // Kernel.
    e.bool(dump.kernel.started);
    e.u64(dump.kernel.next_seq);
    e.u64(dump.kernel.scheduled_total);
    e.u64(dump.kernel.events_fired);
    e.u64(dump.kernel.wakes);
    e.u32(dump.kernel.signals.len() as u32);
    for v in &dump.kernel.signals {
        e.value(v);
    }
    e.u32(dump.kernel.events.len() as u32);
    for ev in &dump.kernel.events {
        e.time(ev.time);
        e.u64(ev.seq);
        match ev.kind {
            KernelEventKind::Drive { sig, value } => {
                e.u8(0);
                e.u32(sig.as_raw());
                e.value(&value);
            }
            KernelEventKind::Timer { comp, tag } => {
                e.u8(1);
                e.u32(comp.as_raw());
                e.u64(tag);
            }
        }
    }
    e.bytes(&dump.kernel.delay_model);
    // Wrappers.
    e.u32(dump.wrappers.len() as u32);
    for w in &dump.wrappers {
        e.bit(w.prev_clk);
        e.u64(w.cycle);
        e.u64(w.dropped_words);
        e.u64(w.metastable_samples);
        e.u64(w.timing_violations);
        e.opt_time(w.last_edge);
        e.times(&w.edge_times);
        encode_trace(&mut e, &w.trace);
        e.u32(w.nodes.len() as u32);
        for (fsm, prev_tok, parity) in &w.nodes {
            encode_node_fsm(&mut e, fsm);
            e.bit(*prev_tok);
            e.bool(*parity);
        }
        e.bools(&w.input_ack_parity);
        e.bools(&w.output_req_parity);
        e.bytes(&w.logic);
    }
    // Clocks.
    e.u32(dump.clocks.len() as u32);
    for &(parked, edges, stops) in &dump.clocks {
        e.bool(parked);
        e.u64(edges);
        e.u64(stops);
    }
    // FIFOs.
    e.u32(dump.fifos.len() as u32);
    for f in &dump.fifos {
        e.u32(f.stages.len() as u32);
        for s in &f.stages {
            match s {
                None => e.u8(0),
                Some(w) => {
                    e.u8(1);
                    e.u64(*w);
                }
            }
        }
        e.u64(f.pushes);
        e.u64(f.pops);
        e.u64(f.max_occupancy as u64);
        e.u64(f.overruns);
        e.u64(f.underruns);
    }
    encode_injector(&mut e, &dump.injector);
    e.into_bytes()
}

pub(crate) fn decode_event_payload(bytes: &[u8]) -> Result<EventStateDump, CanonError> {
    let mut d = Dec::new(bytes);
    let started = d.bool()?;
    let next_seq = d.u64()?;
    let scheduled_total = d.u64()?;
    let events_fired = d.u64()?;
    let wakes = d.u64()?;
    let n_sigs = d.u32()? as usize;
    let mut signals = Vec::with_capacity(n_sigs.min(1 << 16));
    for _ in 0..n_sigs {
        signals.push(d.value()?);
    }
    let n_evs = d.u32()? as usize;
    let mut events = Vec::with_capacity(n_evs.min(1 << 16));
    for _ in 0..n_evs {
        let time = d.time()?;
        let seq = d.u64()?;
        let kind = match d.u8()? {
            0 => KernelEventKind::Drive {
                sig: SignalId::from_raw(d.u32()?),
                value: d.value()?,
            },
            1 => KernelEventKind::Timer {
                comp: ComponentId::from_raw(d.u32()?),
                tag: d.u64()?,
            },
            t => return Err(CanonError::BadTag(t)),
        };
        events.push(KernelEvent { time, seq, kind });
    }
    let delay_model = d.bytes()?.to_vec();
    let kernel = KernelSnapshot {
        now: SimTime::ZERO, // overwritten below from the header by the caller
        started,
        next_seq,
        scheduled_total,
        events_fired,
        wakes,
        signals,
        events,
        delay_model,
    };
    let n_wrappers = d.u32()? as usize;
    let mut wrappers = Vec::with_capacity(n_wrappers.min(1 << 12));
    for _ in 0..n_wrappers {
        let prev_clk = d.bit()?;
        let cycle = d.u64()?;
        let dropped_words = d.u64()?;
        let metastable_samples = d.u64()?;
        let timing_violations = d.u64()?;
        let last_edge = d.opt_time()?;
        let edge_times = d.times()?;
        let trace = decode_trace(&mut d)?;
        let n_nodes = d.u32()? as usize;
        let mut nodes = Vec::with_capacity(n_nodes.min(1 << 8));
        for _ in 0..n_nodes {
            let fsm = decode_node_fsm(&mut d)?;
            let prev_tok = d.bit()?;
            let parity = d.bool()?;
            nodes.push((fsm, prev_tok, parity));
        }
        let input_ack_parity = d.bools()?;
        let output_req_parity = d.bools()?;
        let logic = d.bytes()?.to_vec();
        wrappers.push(WrapperSnapshot {
            prev_clk,
            cycle,
            trace,
            dropped_words,
            metastable_samples,
            last_edge,
            timing_violations,
            edge_times,
            nodes,
            input_ack_parity,
            output_req_parity,
            logic,
        });
    }
    let n_clocks = d.u32()? as usize;
    let mut clocks = Vec::with_capacity(n_clocks.min(1 << 12));
    for _ in 0..n_clocks {
        clocks.push((d.bool()?, d.u64()?, d.u64()?));
    }
    let n_fifos = d.u32()? as usize;
    let mut fifos = Vec::with_capacity(n_fifos.min(1 << 12));
    for _ in 0..n_fifos {
        let n_stages = d.u32()? as usize;
        let mut stages = Vec::with_capacity(n_stages.min(1 << 8));
        for _ in 0..n_stages {
            stages.push(match d.u8()? {
                0 => None,
                1 => Some(d.u64()?),
                t => return Err(CanonError::BadTag(t)),
            });
        }
        let pushes = d.u64()?;
        let pops = d.u64()?;
        let max_occupancy = d.u64()? as usize;
        let overruns = d.u64()?;
        let underruns = d.u64()?;
        fifos.push(FifoSnapshot {
            stages,
            pushes,
            pops,
            max_occupancy,
            overruns,
            underruns,
        });
    }
    let injector = decode_injector(&mut d)?;
    d.finish()?;
    Ok(EventStateDump {
        kernel,
        wrappers,
        clocks,
        fifos,
        injector,
    })
}

// --- compiled-backend payload --------------------------------------------

/// One typed event off the compiled heap, flattened for serialization.
/// `kind` tags: 0 Push, 1 Pop, 2 Move, 3 Token, 4 Clken.
pub(crate) struct CompiledEvDump {
    pub time: SimTime,
    pub seq: u64,
    pub kind: u8,
    /// First operand (channel / sb index).
    pub a: u32,
    /// Second operand (word / stage / node / ena).
    pub b: u64,
}

/// Per-SB dynamic state of the compiled engine.
pub(crate) struct CompiledSbDump {
    pub clk_high: bool,
    pub parked: bool,
    pub clken: bool,
    pub edges: u64,
    pub clock_stops: u64,
    pub cycle: u64,
    pub dropped_words: u64,
    pub timing_violations: u64,
    pub last_edge: Option<SimTime>,
    pub edge_times: Vec<SimTime>,
    pub trace: SbIoTrace,
    pub nodes: Vec<NodeFsmSnapshot>,
    pub logic: Vec<u8>,
}

/// Per-FIFO dynamic state of the compiled engine.
pub(crate) struct CompiledFifoDump {
    pub occ: u64,
    pub words: Vec<u64>,
    pub pending: Vec<(SimTime, u32)>,
    pub pushes: u64,
    pub pops: u64,
    pub overruns: u64,
    pub underruns: u64,
}

/// The compiled engine's complete dynamic state.
pub(crate) struct CompiledStateDump {
    pub now: SimTime,
    pub seq: u64,
    pub events: u64,
    /// Per SB: (phase slot, posedge slot) packed `(time << 64) | seq`
    /// keys, `u128::MAX` when empty.
    pub clk: Vec<(u128, u128)>,
    /// Heap events sorted by `(time, seq)`.
    pub heap: Vec<CompiledEvDump>,
    pub sbs: Vec<CompiledSbDump>,
    pub fifos: Vec<CompiledFifoDump>,
    /// Analog jitter occurrence counters (opaque
    /// `JitterCounters::snapshot_occ` bytes), when active.
    pub jitter: Option<Vec<u8>>,
    /// Protocol fault-injector occurrence counters, when installed.
    pub injector: InjectorDump,
}

pub(crate) fn encode_compiled_payload(dump: &CompiledStateDump) -> Vec<u8> {
    let mut e = Enc::new();
    e.time(dump.now);
    e.u64(dump.seq);
    e.u64(dump.events);
    e.u32(dump.clk.len() as u32);
    for &(phase, posedge) in &dump.clk {
        e.u128(phase);
        e.u128(posedge);
    }
    e.u32(dump.heap.len() as u32);
    for ev in &dump.heap {
        e.time(ev.time);
        e.u64(ev.seq);
        e.u8(ev.kind);
        e.u32(ev.a);
        e.u64(ev.b);
    }
    e.u32(dump.sbs.len() as u32);
    for sb in &dump.sbs {
        e.bool(sb.clk_high);
        e.bool(sb.parked);
        e.bool(sb.clken);
        e.u64(sb.edges);
        e.u64(sb.clock_stops);
        e.u64(sb.cycle);
        e.u64(sb.dropped_words);
        e.u64(sb.timing_violations);
        e.opt_time(sb.last_edge);
        e.times(&sb.edge_times);
        encode_trace(&mut e, &sb.trace);
        e.u32(sb.nodes.len() as u32);
        for n in &sb.nodes {
            encode_node_fsm(&mut e, n);
        }
        e.bytes(&sb.logic);
    }
    e.u32(dump.fifos.len() as u32);
    for f in &dump.fifos {
        e.u64(f.occ);
        e.u64s(&f.words);
        e.u32(f.pending.len() as u32);
        for &(t, stage) in &f.pending {
            e.time(t);
            e.u32(stage);
        }
        e.u64(f.pushes);
        e.u64(f.pops);
        e.u64(f.overruns);
        e.u64(f.underruns);
    }
    match &dump.jitter {
        None => e.u8(0),
        Some(b) => {
            e.u8(1);
            e.bytes(b);
        }
    }
    encode_injector(&mut e, &dump.injector);
    e.into_bytes()
}

pub(crate) fn decode_compiled_payload(bytes: &[u8]) -> Result<CompiledStateDump, CanonError> {
    let mut d = Dec::new(bytes);
    let now = d.time()?;
    let seq = d.u64()?;
    let events = d.u64()?;
    let n_clk = d.u32()? as usize;
    let mut clk = Vec::with_capacity(n_clk.min(1 << 12));
    for _ in 0..n_clk {
        clk.push((d.u128()?, d.u128()?));
    }
    let n_heap = d.u32()? as usize;
    let mut heap = Vec::with_capacity(n_heap.min(1 << 16));
    for _ in 0..n_heap {
        let time = d.time()?;
        let seq = d.u64()?;
        let kind = d.u8()?;
        if kind > 4 {
            return Err(CanonError::BadTag(kind));
        }
        let a = d.u32()?;
        let b = d.u64()?;
        heap.push(CompiledEvDump {
            time,
            seq,
            kind,
            a,
            b,
        });
    }
    let n_sbs = d.u32()? as usize;
    let mut sbs = Vec::with_capacity(n_sbs.min(1 << 12));
    for _ in 0..n_sbs {
        let clk_high = d.bool()?;
        let parked = d.bool()?;
        let clken = d.bool()?;
        let edges = d.u64()?;
        let clock_stops = d.u64()?;
        let cycle = d.u64()?;
        let dropped_words = d.u64()?;
        let timing_violations = d.u64()?;
        let last_edge = d.opt_time()?;
        let edge_times = d.times()?;
        let trace = decode_trace(&mut d)?;
        let n_nodes = d.u32()? as usize;
        let mut nodes = Vec::with_capacity(n_nodes.min(1 << 8));
        for _ in 0..n_nodes {
            nodes.push(decode_node_fsm(&mut d)?);
        }
        let logic = d.bytes()?.to_vec();
        sbs.push(CompiledSbDump {
            clk_high,
            parked,
            clken,
            edges,
            clock_stops,
            cycle,
            dropped_words,
            timing_violations,
            last_edge,
            edge_times,
            trace,
            nodes,
            logic,
        });
    }
    let n_fifos = d.u32()? as usize;
    let mut fifos = Vec::with_capacity(n_fifos.min(1 << 12));
    for _ in 0..n_fifos {
        let occ = d.u64()?;
        let words = d.u64s()?;
        let n_pending = d.u32()? as usize;
        let mut pending = Vec::with_capacity(n_pending.min(1 << 12));
        for _ in 0..n_pending {
            let t = d.time()?;
            let stage = d.u32()?;
            pending.push((t, stage));
        }
        let pushes = d.u64()?;
        let pops = d.u64()?;
        let overruns = d.u64()?;
        let underruns = d.u64()?;
        fifos.push(CompiledFifoDump {
            occ,
            words,
            pending,
            pushes,
            pops,
            overruns,
            underruns,
        });
    }
    let jitter = match d.u8()? {
        0 => None,
        1 => Some(d.bytes()?.to_vec()),
        t => return Err(CanonError::BadTag(t)),
    };
    let injector = decode_injector(&mut d)?;
    d.finish()?;
    Ok(CompiledStateDump {
        now,
        seq,
        events,
        clk,
        heap,
        sbs,
        fifos,
        jitter,
        injector,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_key_matches_serve_scheme() {
        // Locked-down vectors: st-serve's ContentKey::of must produce
        // identical bytes for identical input (checked there too).
        let k = content_key16(b"");
        assert_eq!(k, content_key16(b""));
        assert_ne!(content_key16(b"a"), content_key16(b"b"));
        assert_eq!(key_hex(&k).len(), 32);
    }

    #[test]
    fn checkpoint_round_trips_byte_stably() {
        let ck = Checkpoint::new(
            CheckpointBackend::Compiled,
            [7; 16],
            42,
            SimTime::ZERO + SimDuration::ns(5),
            vec![1, 2, 3, 4, 5],
        );
        let bytes = ck.to_canonical_bytes();
        let back = Checkpoint::from_canonical_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.to_canonical_bytes(), bytes, "byte-stable");
        assert_eq!(back.content_hash(), ck.content_hash());
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        let ck = Checkpoint::new(
            CheckpointBackend::Event,
            [0; 16],
            1,
            SimTime::ZERO,
            vec![9; 8],
        );
        let bytes = ck.to_canonical_bytes();
        assert_eq!(
            Checkpoint::from_canonical_bytes(&bytes[..bytes.len() - 1]),
            Err(CanonError::Truncated)
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Checkpoint::from_canonical_bytes(&bad_magic),
            Err(CanonError::BadMagic)
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert_eq!(
            Checkpoint::from_canonical_bytes(&bad_version),
            Err(CanonError::BadVersion(99))
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            Checkpoint::from_canonical_bytes(&trailing),
            Err(CanonError::TrailingBytes(1))
        );
    }

    #[test]
    fn config_hash_distinguishes_configurations() {
        let spec = crate::scenarios::pingpong_spec();
        let base = config_hash(&spec, 0, 64, None);
        assert_eq!(base, config_hash(&spec, 0, 64, None), "deterministic");
        assert_ne!(base, config_hash(&spec, 1, 64, None), "seed matters");
        assert_ne!(base, config_hash(&spec, 0, 65, None), "limit matters");
        let plan = FaultPlan {
            seed: 3,
            ..FaultPlan::default()
        };
        assert_ne!(base, config_hash(&spec, 0, 64, Some(&plan)));
        let mut spec2 = spec.clone();
        spec2.sbs[0].period = spec2.sbs[0].period * 2;
        assert_ne!(base, config_hash(&spec2, 0, 64, None), "spec matters");
    }
}
