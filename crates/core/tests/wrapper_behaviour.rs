//! Focused tests of wrapper-level behaviours that the system-level
//! suites exercise only incidentally: drop accounting, timing-violation
//! corruption, token holding, observability signals, and edge-time
//! capture.

use st_sim::time::{SimDuration, SimTime};
use synchro_tokens::logic::{SbIo, SyncLogic};
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::producer_consumer_spec;

/// Logic that stubbornly sends every cycle, ignoring `can_send`.
#[derive(Debug, Default)]
struct StubbornSender {
    attempts: u64,
}

impl SyncLogic for StubbornSender {
    fn tick(&mut self, _cycle: u64, io: &mut SbIo<'_>) {
        if io.num_outputs() > 0 {
            io.send(0, self.attempts);
            self.attempts += 1;
        }
    }
}

#[test]
fn blocked_sends_are_counted_as_dropped() {
    let mut sys = SystemBuilder::new(producer_consumer_spec())
        .unwrap()
        .with_logic(SbId(0), StubbornSender::default())
        .with_logic(SbId(1), SinkCollect::new())
        .build();
    sys.run_until_cycles(100, SimDuration::us(100)).unwrap();
    let dropped = sys.dropped_words(SbId(0));
    let sent = sys.io_trace(SbId(0)).output_words(0).len() as u64;
    let attempts = sys.cycles(SbId(0));
    assert!(dropped > 0, "disabled windows must drop stubborn sends");
    assert_eq!(dropped + sent, attempts, "every attempt is accounted for");
    // Nothing dropped ever reaches the FIFO.
    let (pushes, _, over, _) = sys.fifo_stats(ChannelId(0));
    assert_eq!(pushes, sent);
    assert_eq!(over, 0);
}

#[test]
fn timing_violations_corrupt_exactly_the_fast_block() {
    let mut spec = producer_consumer_spec();
    spec.sbs[0].logic_delay = SimDuration::ns(15); // > 10 ns period
    let mut sys = SystemBuilder::new(spec)
        .unwrap()
        .with_logic(SbId(0), SequenceSource::new(0, 1))
        .with_logic(SbId(1), SinkCollect::new())
        .build();
    sys.run_until_cycles(80, SimDuration::us(100)).unwrap();
    assert!(sys.timing_violations(SbId(0)) > 0);
    assert_eq!(sys.timing_violations(SbId(1)), 0);
    // The sink observes the deterministic corruption pattern (w ^ 0x5A5A).
    let sink: &SinkCollect = sys.logic(SbId(1));
    let words = sink.words_on(0);
    assert!(!words.is_empty());
    assert!(
        words.iter().any(|w| w & 0x5A5A == 0x5A5A || *w >= 0x4000),
        "corruption must be visible: {words:?}"
    );
}

#[test]
fn holding_tokens_freezes_the_peer_only() {
    let mut sys = SystemBuilder::new(producer_consumer_spec())
        .unwrap()
        .with_logic(SbId(0), SequenceSource::new(0, 1))
        .with_logic(SbId(1), SinkCollect::new())
        .build();
    sys.run_until_cycles(50, SimDuration::us(100)).unwrap();
    sys.set_hold_tokens(SbId(0), true);
    sys.run_for(SimDuration::us(20)).unwrap();
    let frozen_rx = sys.cycles(SbId(1));
    let tx_mid = sys.cycles(SbId(0));
    sys.run_for(SimDuration::us(20)).unwrap();
    assert_eq!(sys.cycles(SbId(1)), frozen_rx, "receiver starves");
    assert!(sys.cycles(SbId(0)) > tx_mid, "holder keeps running");
    assert_eq!(sys.stopped_sbs(), vec![SbId(1)]);
    // Release: the receiver resumes.
    sys.set_hold_tokens(SbId(0), false);
    sys.run_for(SimDuration::us(20)).unwrap();
    assert!(sys.cycles(SbId(1)) > frozen_rx);
}

#[test]
fn observe_nodes_traces_counters_and_enables() {
    let mut sys = SystemBuilder::new(producer_consumer_spec())
        .unwrap()
        .with_logic(SbId(0), SequenceSource::new(0, 1))
        .with_logic(SbId(1), SinkCollect::new())
        .observe_nodes()
        .build();
    sys.run_for(SimDuration::us(2)).unwrap();
    let trace = sys.sim().trace();
    let names: Vec<String> = trace
        .signals()
        .filter_map(|s| trace.name(s).map(str::to_owned))
        .collect();
    for expect in [
        "tx.clk",
        "tx.clken",
        "rx.clk",
        "ring0.tok_to_tx",
        "ring0.tok_to_rx",
        "tx.ring0.sbena",
        "tx.ring0.hold",
        "rx.ring0.recycle",
    ] {
        assert!(
            names.iter().any(|n| n == expect),
            "missing traced signal {expect}; have {names:?}"
        );
    }
    // The hold counter waveform actually counts.
    let hold_sig = trace
        .signals()
        .find(|s| trace.name(*s) == Some("tx.ring0.hold"))
        .unwrap();
    let values: std::collections::BTreeSet<u64> = trace
        .changes(hold_sig)
        .filter_map(|(_, v)| v.as_word())
        .collect();
    assert!(values.len() >= 3, "hold counter must move: {values:?}");
}

#[test]
fn edge_times_align_with_cycles_and_periods() {
    let mut sys = SystemBuilder::new(producer_consumer_spec())
        .unwrap()
        .with_trace_limit(64)
        .build();
    sys.run_until_cycles(64, SimDuration::us(100)).unwrap();
    let times = sys.edge_times(SbId(0));
    assert_eq!(times.len(), 64);
    assert!(times.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    // With no stalls in this window, consecutive edges are one period
    // apart; with stalls they are longer — never shorter.
    let period = SimDuration::ns(10);
    for w in times.windows(2) {
        assert!(w[1].since(w[0]) >= period, "edges closer than a period");
    }
    assert!(times[0] >= SimTime::ZERO + period / 2);
}

#[test]
fn bypass_ghost_reads_present_garbage_not_crashes() {
    // A *faster* consumer (7 ns vs 10 ns) keeps the FIFO mostly empty,
    // so `head_valid` rises on producer-driven arrivals whose phase
    // drifts through the consumer's sampling window — metastable
    // samples occur; the wrapper must present garbage words, count the
    // events, and keep running.
    let mut spec = producer_consumer_spec();
    spec.sbs[1].period = SimDuration::ns(7);
    let mut sys = SystemBuilder::new(spec)
        .unwrap()
        .with_logic(SbId(0), SequenceSource::new(0, 1))
        .with_logic(SbId(1), SinkCollect::new())
        .bypass(SimDuration::ns(2))
        .with_seed(11)
        .build();
    sys.run_until_cycles(400, SimDuration::us(100)).unwrap();
    assert!(sys.metastable_samples(SbId(1)) > 0);
    let sink: &SinkCollect = sys.logic(SbId(1));
    assert!(!sink.received.is_empty());
}

#[test]
fn node_params_rewrite_changes_future_rotations() {
    let mut sys = SystemBuilder::new(producer_consumer_spec())
        .unwrap()
        .with_logic(SbId(0), SequenceSource::new(0, 1))
        .with_logic(SbId(1), SinkCollect::new())
        .build();
    sys.run_until_cycles(40, SimDuration::us(100)).unwrap();
    let passes_before = sys.node(SbId(0), RingId(0)).unwrap().passes();
    // Double the hold window: rotations slow down, so the pass rate per
    // cycle drops.
    sys.set_node_params(SbId(0), RingId(0), NodeParams::new(8, 16));
    sys.run_until_cycles(200, SimDuration::us(200)).unwrap();
    let node = sys.node(SbId(0), RingId(0)).unwrap();
    assert_eq!(node.params(), NodeParams::new(8, 16));
    assert!(node.passes() > passes_before, "rotations continue");
}
