//! Parallel-campaign equivalence: the E1 sweep fanned across worker
//! threads must produce a report byte-identical to the sequential
//! runner's, because the configuration list is enumerated up front and
//! results merge in canonical config order.

use proptest::prelude::*;
use synchro_tokens::campaign::{default_threads, run_jobs};
use synchro_tokens::determinism::{
    enumerate_configs, run_campaign, run_campaign_threads, CampaignConfig, DelayConfig,
};
use synchro_tokens::scenarios::{build_e1, e1_spec};
use synchro_tokens::spec::SystemSpec;

#[test]
fn e1_sweep_is_byte_identical_at_1_2_n_threads() {
    let spec = e1_spec();
    let cfg = CampaignConfig {
        runs: 24,
        compare_cycles: 50,
        ..CampaignConfig::default()
    };
    let build = |s: SystemSpec, seed: u64| build_e1(s, seed, 50);
    let reference = run_campaign(&spec, &cfg, &build);
    let reference_report = reference.report();
    assert!(reference.all_match(), "{reference}");

    for threads in [1, 2, default_threads().max(5)] {
        let (result, stats) = run_campaign_threads(&spec, &cfg, &build, threads);
        assert_eq!(
            result.report(),
            reference_report,
            "report differs at {threads} thread(s)"
        );
        assert_eq!(result.total, reference.total);
        assert_eq!(result.matches, reference.matches);
        assert_eq!(result.incomplete, reference.incomplete);
        assert_eq!(stats.runs, cfg.runs + 1, "configs + nominal reference");
        assert!(stats.events_fired > 0);
        assert!(stats.wakes > 0);
    }
}

#[test]
fn campaign_stats_are_thread_count_invariant_on_kernel_counters() {
    // Wall time varies per machine; the *work done* must not.
    let spec = e1_spec();
    let cfg = CampaignConfig {
        runs: 6,
        compare_cycles: 40,
        ..CampaignConfig::default()
    };
    let build = |s: SystemSpec, seed: u64| build_e1(s, seed, 40);
    let (_, seq) = run_campaign_threads(&spec, &cfg, &build, 1);
    let (_, par) = run_campaign_threads(&spec, &cfg, &build, 3);
    assert_eq!(seq.events_fired, par.events_fired);
    assert_eq!(seq.wakes, par.wakes);
    assert_eq!(seq.runs, par.runs);
}

/// Conformance clause this suite is evidence for: campaign results are
/// byte-identical at any thread count and any work interleaving.
const WITNESSED: &[&str] = &["ST-CAMP-005"];

/// Registers the suite's witness declaration for the lint.
#[test]
fn conformance_witnesses() {
    st_conformance::witnesses!(["ST-CAMP-005"]);
}

proptest! {
    #![proptest_config(st_testkit::case_budget(16, WITNESSED))]

    /// Merging is interleaving-independent: any random subset of the
    /// campaign's configs, mapped through `run_jobs` at any thread
    /// count, yields exactly the sequential map.
    #[test]
    fn merge_is_interleaving_independent_for_random_subsets(
        picks in proptest::collection::vec(0usize..60, 1..24),
        threads in 1usize..9,
    ) {
        let spec = e1_spec();
        let cfg = CampaignConfig { runs: 60, ..CampaignConfig::default() };
        let all = enumerate_configs(&spec, &cfg);
        let subset: Vec<DelayConfig> =
            picks.iter().map(|&i| all[i].clone()).collect();
        let digest = |i: usize, c: &DelayConfig| {
            // Deterministic per-job result that also encodes the slot,
            // so any reordering or misrouting is visible.
            (i as u64).wrapping_mul(0x517C_C1B7_2722_0A95) ^ c.fingerprint()
        };
        let sequential = run_jobs(&subset, 1, digest);
        let fanned = run_jobs(&subset, threads, digest);
        prop_assert_eq!(sequential, fanned);
    }
}
