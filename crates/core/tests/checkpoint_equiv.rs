//! Differential proof that checkpoint/resume is exact: on both
//! backends, over the canonical scenario specs and under active fault
//! plans, a run that is checkpointed at cycle `k`, serialized to
//! canonical bytes, deserialized and resumed must be **byte-identical**
//! to the same run left alone — same I/O trace rows and digests, cycle
//! counts, edge times, clock/FIFO/violation statistics, logic state and
//! end times. Also locks the canonical format (round-trip byte
//! stability), content addressing (independent identical runs hash the
//! same), the mismatch rejections, and the `run_until_cycles`-after-
//! resume edge cases (cycle 0, final cycle, expired budget): every such
//! call must error or complete identically, never hang.
//!
//! The case budget honours `PROPTEST_CASES` (CI runs a fixed reduced
//! budget; see `scripts/ci.sh`).

use proptest::prelude::*;
use st_sim::prelude::*;
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::{chain_spec, pingpong_spec, producer_consumer_spec, MixerLogic};
use synchro_tokens::Checkpoint;
use synchro_tokens::FaultClass;

const MAX_TIME: SimDuration = SimDuration::us(3000);

fn pick_spec(which: usize) -> SystemSpec {
    match which % 4 {
        0 => pingpong_spec(),
        1 => producer_consumer_spec(),
        2 => chain_spec(3),
        _ => chain_spec(4),
    }
}

/// A fault plan whose effects live inside the engine (analog jitter or
/// protocol attacks), so checkpointing mid-run exercises the injector
/// and jitter-counter state. SEU plans are applied externally by
/// `run_with_plan` and are covered by the prefix-fork planner tests.
fn pick_plan(spec: &SystemSpec, which: usize, seed: u64) -> Option<FaultPlan> {
    match which % 3 {
        0 => None,
        1 => Some(FaultPlan::generate(FaultClass::Analog, spec, seed)),
        _ => Some(FaultPlan::generate(FaultClass::Protocol, spec, seed)),
    }
}

fn make_builder(spec: &SystemSpec, trace_limit: usize, plan: Option<&FaultPlan>) -> SystemBuilder {
    let mut b = SystemBuilder::new(spec.clone())
        .expect("scenario specs validate")
        .with_trace_limit(trace_limit);
    for i in 0..spec.sbs.len() {
        b = b.with_logic(SbId(i), MixerLogic::new(0x1000 * i as u64));
    }
    if let Some(p) = plan {
        b = b.with_fault_plan(p.clone());
    }
    b
}

/// Every externally observable byte of a finished run.
#[derive(Debug, PartialEq, Eq)]
struct Observables {
    now: SimTime,
    cycles: Vec<u64>,
    digests: Vec<u64>,
    traces: Vec<Vec<u8>>,
    clocks: Vec<(u64, u64)>,
    edges: Vec<Vec<SimTime>>,
    violations: Vec<u64>,
    drops: Vec<u64>,
    fifos: Vec<(u64, u64, u64, u64)>,
    mixers: Vec<(u64, u64)>,
}

fn observe(sys: &AnySystem) -> Observables {
    let n = sys.spec().sbs.len();
    let c = sys.spec().channels.len();
    Observables {
        now: sys.now(),
        cycles: (0..n).map(|i| sys.cycles(SbId(i))).collect(),
        digests: (0..n).map(|i| sys.io_trace(SbId(i)).digest()).collect(),
        traces: (0..n)
            .map(|i| sys.io_trace(SbId(i)).to_canonical_bytes())
            .collect(),
        clocks: (0..n).map(|i| sys.clock_stats(SbId(i))).collect(),
        edges: (0..n).map(|i| sys.edge_times(SbId(i)).to_vec()).collect(),
        violations: (0..n).map(|i| sys.timing_violations(SbId(i))).collect(),
        drops: (0..n).map(|i| sys.dropped_words(SbId(i))).collect(),
        fifos: (0..c).map(|i| sys.fifo_stats(ChannelId(i))).collect(),
        mixers: (0..n)
            .map(|i| sys.logic::<MixerLogic>(SbId(i)).state())
            .collect(),
    }
}

/// The core differential: reference runs `k` then `k + extra` cycles in
/// two calls; candidate runs `k`, checkpoints, round-trips the blob,
/// resumes into a fresh engine and runs the same second call. Both
/// paths must agree on every observable, and the resumed engine's own
/// immediate re-checkpoint must reproduce the original blob.
fn assert_resume_equivalent(
    spec: &SystemSpec,
    plan: Option<&FaultPlan>,
    backend: Backend,
    trace_limit: usize,
    k: u64,
    extra: u64,
) {
    let total = k + extra;
    let mut reference = make_builder(spec, trace_limit, plan).build_backend(backend);
    reference.run_until_cycles(k, MAX_TIME).expect("ref run(k)");
    let ref_ckpt = reference.checkpoint().expect("ref checkpoint");
    reference
        .run_until_cycles(total, MAX_TIME)
        .expect("ref run(total)");

    let mut paused = make_builder(spec, trace_limit, plan).build_backend(backend);
    paused.run_until_cycles(k, MAX_TIME).expect("run(k)");
    let ckpt = paused.checkpoint().expect("checkpoint");

    // Determinism: the independent reference run checkpoints to the
    // exact same bytes at the same point.
    assert_eq!(
        ckpt.to_canonical_bytes(),
        ref_ckpt.to_canonical_bytes(),
        "independent identical runs must checkpoint identically"
    );
    // Canonical round-trip is byte-stable.
    let bytes = ckpt.to_canonical_bytes();
    let ckpt = Checkpoint::from_canonical_bytes(&bytes).expect("round-trip");
    assert_eq!(ckpt.to_canonical_bytes(), bytes, "byte-stable re-encode");

    let mut resumed =
        AnySystem::resume(make_builder(spec, trace_limit, plan), &ckpt).expect("resume");
    // A resumed engine checkpoints straight back to the original blob:
    // restore captured *all* of the state the snapshot covers.
    assert_eq!(
        resumed
            .checkpoint()
            .expect("re-checkpoint")
            .to_canonical_bytes(),
        bytes,
        "checkpoint(resume(ckpt)) must reproduce ckpt"
    );
    resumed
        .run_until_cycles(total, MAX_TIME)
        .expect("resumed run(total)");
    assert_eq!(
        observe(&resumed),
        observe(&reference),
        "resumed continuation diverged from the straight run"
    );
}

/// The conformance clauses this suite is evidence for: resume≡straight
/// byte identity and the canonical checkpoint format's round-trip
/// stability + fail-closed mismatch rejection.
const WITNESSED: &[&str] = &["ST-EQ-004", "ST-CKPT-007"];

/// Registers the suite's witness declaration for the lint.
#[test]
fn conformance_witnesses() {
    st_conformance::witnesses!(["ST-EQ-004", "ST-CKPT-007"]);
}

proptest! {
    #![proptest_config(st_testkit::case_budget(24, WITNESSED))]

    /// Event backend: resume ≡ straight run, with and without active
    /// fault plans.
    #[test]
    fn event_resume_matches_straight_run(
        which_spec in 0usize..4,
        which_plan in 0usize..3,
        plan_seed in 0u64..1000,
        k in 1u64..40,
        extra in 1u64..40,
    ) {
        let spec = pick_spec(which_spec);
        let plan = pick_plan(&spec, which_plan, plan_seed);
        assert_resume_equivalent(&spec, plan.as_ref(), Backend::Event, 96, k, extra);
    }

    /// Compiled backend: resume ≡ straight run, with and without active
    /// fault plans.
    #[test]
    fn compiled_resume_matches_straight_run(
        which_spec in 0usize..4,
        which_plan in 0usize..3,
        plan_seed in 0u64..1000,
        k in 1u64..40,
        extra in 1u64..40,
    ) {
        let spec = pick_spec(which_spec);
        let plan = pick_plan(&spec, which_plan, plan_seed);
        assert_resume_equivalent(&spec, plan.as_ref(), Backend::Compiled, 96, k, extra);
    }

    /// Checkpoints are content-addressed: independent identical runs
    /// produce identical content hashes; a different kernel seed (part
    /// of the configuration) changes the spec hash.
    #[test]
    fn checkpoints_are_content_addressed(which_spec in 0usize..4, k in 1u64..30) {
        let spec = pick_spec(which_spec);
        let run = |seed: u64| {
            let mut sys = make_builder(&spec, 64, None)
                .with_seed(seed)
                .build_backend(Backend::Compiled);
            sys.run_until_cycles(k, MAX_TIME).unwrap();
            sys.checkpoint().unwrap()
        };
        let a = run(0);
        let b = run(0);
        prop_assert_eq!(a.content_hash(), b.content_hash());
        prop_assert_eq!(a.spec_hash(), b.spec_hash());
        let c = run(1);
        prop_assert_ne!(a.spec_hash(), c.spec_hash());
    }
}

#[test]
fn resume_rejects_mismatched_configurations() {
    let spec = pingpong_spec();
    let mut sys = make_builder(&spec, 64, None).build_backend(Backend::Compiled);
    sys.run_until_cycles(10, MAX_TIME).unwrap();
    let ckpt = sys.checkpoint().unwrap();

    // Different seed → different configuration hash.
    let err = AnySystem::resume(make_builder(&spec, 64, None).with_seed(9), &ckpt).unwrap_err();
    assert_eq!(err, CheckpointError::SpecMismatch);
    // Different trace limit is also part of the configuration.
    let err = AnySystem::resume(make_builder(&spec, 63, None), &ckpt).unwrap_err();
    assert_eq!(err, CheckpointError::SpecMismatch);
    // A fault plan the original never had.
    let plan = FaultPlan::generate(FaultClass::Analog, &spec, 5);
    let err = AnySystem::resume(make_builder(&spec, 64, Some(&plan)), &ckpt).unwrap_err();
    assert_eq!(err, CheckpointError::SpecMismatch);
    // Backend crossing is refused even with the right configuration.
    let err = System::resume(make_builder(&spec, 64, None), &ckpt).unwrap_err();
    assert_eq!(err, CheckpointError::BackendMismatch);
}

#[test]
fn bypass_and_observed_builds_refuse_to_checkpoint() {
    let spec = pingpong_spec();
    let mut sys = SystemBuilder::new(spec.clone())
        .unwrap()
        .bypass(SimDuration::ps(200))
        .build();
    sys.run_until_cycles(5, MAX_TIME).unwrap();
    assert!(matches!(
        sys.checkpoint(),
        Err(CheckpointError::Unsupported(_))
    ));

    let mut observed = SystemBuilder::new(spec).unwrap().observe_nodes().build();
    observed.run_until_cycles(5, MAX_TIME).unwrap();
    assert!(matches!(
        observed.checkpoint(),
        Err(CheckpointError::Unsupported(_))
    ));
}

#[test]
fn corrupt_blob_is_rejected_not_resumed() {
    let spec = pingpong_spec();
    let mut sys = make_builder(&spec, 64, None).build_backend(Backend::Compiled);
    sys.run_until_cycles(10, MAX_TIME).unwrap();
    let mut bytes = sys.checkpoint().unwrap().to_canonical_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // flip inside the payload

    // Header-level rejection is fine; if the header survived, resuming
    // the mangled payload must fail cleanly (decode error or shape
    // mismatch), never panic.
    if let Ok(ckpt) = Checkpoint::from_canonical_bytes(&bytes) {
        let _ = AnySystem::resume(make_builder(&spec, 64, None), &ckpt);
    }
}

// --- `run_until_cycles` after resume: edge cases (never hang) -----------

#[test]
fn resume_at_cycle_zero_matches_fresh_build() {
    for backend in [Backend::Event, Backend::Compiled] {
        let spec = pingpong_spec();
        let fresh = make_builder(&spec, 64, None).build_backend(backend);
        let ckpt = fresh.checkpoint().expect("checkpoint before any run");
        assert_eq!(ckpt.cycle(), 0);
        let mut resumed = AnySystem::resume(make_builder(&spec, 64, None), &ckpt).unwrap();
        let mut reference = make_builder(&spec, 64, None).build_backend(backend);
        resumed.run_until_cycles(30, MAX_TIME).unwrap();
        reference.run_until_cycles(30, MAX_TIME).unwrap();
        assert_eq!(observe(&resumed), observe(&reference));
    }
}

#[test]
fn resume_at_or_past_the_target_cycle_returns_immediately() {
    for backend in [Backend::Event, Backend::Compiled] {
        let spec = pingpong_spec();
        let mut sys = make_builder(&spec, 64, None).build_backend(backend);
        sys.run_until_cycles(25, MAX_TIME).unwrap();
        let ckpt = sys.checkpoint().unwrap();
        let mut resumed = AnySystem::resume(make_builder(&spec, 64, None), &ckpt).unwrap();
        // Target at/below the checkpoint cycle: must complete instantly
        // without advancing time.
        let before = resumed.now();
        let out = resumed.run_until_cycles(ckpt.cycle(), MAX_TIME).unwrap();
        assert_eq!(out, RunOutcome::Reached);
        assert_eq!(resumed.now(), before, "no time may pass");
        let out = resumed.run_until_cycles(1, MAX_TIME).unwrap();
        assert_eq!(out, RunOutcome::Reached);
        assert_eq!(resumed.now(), before);
    }
}

// --- batched lane extraction --------------------------------------------

/// One builder per salt over `spec`, mixers on every SB — same-spec
/// lanes share a lockstep group while their data columns differ.
fn batch_builders(spec: &SystemSpec, trace_limit: usize, salts: &[u64]) -> Vec<SystemBuilder> {
    salts
        .iter()
        .map(|&salt| {
            let mut b = SystemBuilder::new(spec.clone())
                .expect("scenario specs validate")
                .with_trace_limit(trace_limit);
            for i in 0..spec.sbs.len() {
                b = b.with_logic(
                    SbId(i),
                    MixerLogic::new(salt.wrapping_add(0x1000 * i as u64)),
                );
            }
            b
        })
        .collect()
}

/// A lane extracted from a shared lockstep group checkpoints to the
/// exact bytes the scalar compiled engine produces at the same point
/// (the drivers are verbatim-identical, so the full dynamic state —
/// heap, wall clock, traces, streamed digests — must agree), and a
/// scalar engine resumed from the batched blob continues byte-identical
/// to the scalar straight run.
#[test]
fn batched_lane_checkpoint_matches_scalar_and_resumes() {
    let spec = pingpong_spec();
    let salts = [3u64, 88, 1234];
    let (k, total) = (18u64, 45u64);

    let mut batch = BatchedSystem::build_with_limit(batch_builders(&spec, 96, &salts), 64)
        .expect("supported batch");
    assert_eq!(batch.group_count(), 1, "lanes must share one group");
    for out in batch.run_until_cycles(k, MAX_TIME) {
        assert_eq!(out, RunOutcome::Reached);
    }

    for (lane, &salt) in salts.iter().enumerate() {
        let builder = || {
            let mut bs = batch_builders(&spec, 96, &[salt]);
            bs.pop().unwrap()
        };
        let mut scalar = builder().build_backend(Backend::Compiled);
        scalar.run_until_cycles(k, MAX_TIME).unwrap();
        let scalar_ckpt = scalar.checkpoint().expect("scalar checkpoint");
        let lane_ckpt = batch.checkpoint(lane).expect("lane checkpoint");
        assert_eq!(
            lane_ckpt.to_canonical_bytes(),
            scalar_ckpt.to_canonical_bytes(),
            "lane {lane} checkpoint must be byte-equal to the scalar engine's"
        );
        assert_eq!(batch.spec_hash(lane), lane_ckpt.spec_hash());
        // Streamed per-edge digests equal the scalar post-hoc digests.
        for sb in 0..spec.sbs.len() {
            assert_eq!(
                batch.trace_digest(lane, SbId(sb)),
                scalar.io_trace(SbId(sb)).digest(),
                "lane {lane} sb {sb} streamed digest"
            );
        }
        // Resume from the batched blob; continue beside the straight run.
        scalar.run_until_cycles(total, MAX_TIME).unwrap();
        let mut resumed = AnySystem::resume(builder(), &lane_ckpt).expect("resume from lane");
        resumed.run_until_cycles(total, MAX_TIME).unwrap();
        assert_eq!(
            observe(&resumed),
            observe(&scalar),
            "lane {lane} resumed continuation diverged"
        );
    }
}

/// Checkpointing a lane that was isolated out of its group mid-run (an
/// SEU flip through `node_mut` forces the split) still matches the
/// scalar engine driven through the identical call sequence, and both
/// the struck and the untouched sibling lanes resume correctly —
/// including under an expired budget, which must time out, not hang.
#[test]
fn batched_split_lane_checkpoint_matches_scalar() {
    let spec = pingpong_spec();
    let salts = [7u64, 7, 21];
    let (k, total) = (12u64, 40u64);
    let struck = 1usize;
    let ring = RingId(0);
    let holder = spec.rings[ring.0].holder;

    let mut batch = BatchedSystem::build_with_limit(batch_builders(&spec, 96, &salts), 64)
        .expect("supported batch");
    batch.run_until_cycles(k, MAX_TIME);
    batch
        .node_mut(struck, holder, ring)
        .expect("ring node exists")
        .seu_flip_token_latch();
    assert!(batch.group_count() > 1, "the flip must split the group");
    batch.run_until_cycles(total, MAX_TIME);

    for (lane, &salt) in salts.iter().enumerate() {
        let builder = || {
            let mut bs = batch_builders(&spec, 96, &[salt]);
            bs.pop().unwrap()
        };
        let mut scalar = builder().build_backend(Backend::Compiled);
        scalar.run_until_cycles(k, MAX_TIME).unwrap();
        if lane == struck {
            scalar
                .node_mut(holder, ring)
                .expect("ring node exists")
                .seu_flip_token_latch();
        }
        scalar.run_until_cycles(total, MAX_TIME).unwrap();
        let lane_ckpt = batch.checkpoint(lane).expect("post-split lane checkpoint");
        assert_eq!(
            lane_ckpt.to_canonical_bytes(),
            scalar
                .checkpoint()
                .expect("scalar checkpoint")
                .to_canonical_bytes(),
            "lane {lane} post-split checkpoint must match scalar"
        );
        for sb in 0..spec.sbs.len() {
            assert_eq!(
                batch.trace_digest(lane, SbId(sb)),
                scalar.io_trace(SbId(sb)).digest(),
                "lane {lane} sb {sb} post-split streamed digest"
            );
        }
        // Expired budget on a resumed engine: TimedOut, never a hang.
        let mut resumed = AnySystem::resume(builder(), &lane_ckpt).expect("resume");
        let out = resumed
            .run_until_cycles(lane_ckpt.cycle() + 500, SimDuration::ZERO)
            .unwrap();
        assert_eq!(out, RunOutcome::TimedOut);
    }
}

#[test]
fn resume_with_expired_budget_times_out_cleanly() {
    for backend in [Backend::Event, Backend::Compiled] {
        let spec = pingpong_spec();
        let mut sys = make_builder(&spec, 64, None).build_backend(backend);
        sys.run_until_cycles(10, MAX_TIME).unwrap();
        let ckpt = sys.checkpoint().unwrap();
        let mut resumed = AnySystem::resume(make_builder(&spec, 64, None), &ckpt).unwrap();
        // Zero remaining budget and an unreached target: TimedOut, not
        // a hang and not a lie about reaching the cycle count.
        let out = resumed
            .run_until_cycles(ckpt.cycle() + 1000, SimDuration::ZERO)
            .unwrap();
        assert_eq!(out, RunOutcome::TimedOut);
    }
}

/// In-place rewind (`restore_decoded` into a *dirty* engine) must be
/// indistinguishable from a fresh `resume_decoded`: a warm engine that
/// already ran past the checkpoint — or ran a different variant — is
/// fully overwritten, down to re-checkpoint byte equality. This is the
/// contract the prefix-fork sweep's per-worker engine reuse stands on.
#[test]
fn in_place_restore_into_dirty_engine_is_exact() {
    let spec = pick_spec(0);
    for which in 0..3 {
        let plan = pick_plan(&spec, which, 0xD1A7 + which as u64);
        let (k, total) = (14u64, 40u64);

        // Reference: straight run checkpointed at k, resumed fresh.
        let mut reference = make_builder(&spec, 64, plan.as_ref()).build_backend(Backend::Compiled);
        assert_eq!(reference.backend_kind(), BackendKind::Compiled);
        reference.run_until_cycles(k, MAX_TIME).unwrap();
        let ckpt = reference.checkpoint().unwrap().decode().unwrap();
        let mut fresh =
            AnySystem::resume_decoded(make_builder(&spec, 64, plan.as_ref()), &ckpt).unwrap();
        fresh.run_until_cycles(total, MAX_TIME).unwrap();
        let want = observe(&fresh);
        let want_blob = fresh.checkpoint().unwrap().to_canonical_bytes();

        // Dirty engine: same configuration, but already run far past k
        // (trace full, heap and counters hot) before the rewind.
        let mut dirty = make_builder(&spec, 64, plan.as_ref()).build_backend(Backend::Compiled);
        dirty.run_until_cycles(total + 13, MAX_TIME).unwrap();
        dirty.restore_decoded(&ckpt).expect("in-place restore");
        dirty.run_until_cycles(total, MAX_TIME).unwrap();
        assert_eq!(observe(&dirty), want, "plan variant {which}");
        assert_eq!(
            dirty.checkpoint().unwrap().to_canonical_bytes(),
            want_blob,
            "plan variant {which}: re-checkpoint bytes"
        );

        // Rewinding twice from the same decoded blob is idempotent.
        dirty.restore_decoded(&ckpt).expect("second restore");
        dirty.run_until_cycles(total, MAX_TIME).unwrap();
        assert_eq!(observe(&dirty), want, "plan variant {which}: re-restore");
    }
}

/// A cached engine whose configuration differs from the checkpoint's
/// must fail the in-place restore closed (and an event-backed engine
/// must report it cannot restore in place at all).
#[test]
fn in_place_restore_rejects_mismatched_engine() {
    let spec = pingpong_spec();
    let mut sys = make_builder(&spec, 64, None).build_backend(Backend::Compiled);
    sys.run_until_cycles(9, MAX_TIME).unwrap();
    let ckpt = sys.checkpoint().unwrap().decode().unwrap();

    // Different seed ⇒ different configuration hash.
    let mut other = make_builder(&spec, 64, None)
        .with_seed(99)
        .build_backend(Backend::Compiled);
    assert!(matches!(
        other.restore_decoded(&ckpt),
        Err(CheckpointError::SpecMismatch)
    ));

    // Event backend: in-place restore is unsupported, fresh resume works.
    let mut ev = make_builder(&spec, 64, None).build_backend(Backend::Event);
    assert!(matches!(
        ev.restore_decoded(&ckpt),
        Err(CheckpointError::Unsupported(_))
    ));
}
