//! Property-based tests of the node FSM's determinism theorem (schedule
//! invariance under arbitrary token timing) and spec validation.

use proptest::prelude::*;
use st_sim::time::SimDuration;
use synchro_tokens::formal::{verify_ring_determinism, Verdict};
use synchro_tokens::node::{NodeFsm, NodePhase};
use synchro_tokens::spec::{NodeParams, SystemSpec};

/// Drives a single node FSM with token arrivals at adversarial points
/// and returns the enabled-cycle schedule over `horizon` cycles.
fn schedule_with_arrivals(params: NodeParams, arrivals: &[u8], horizon: u32) -> Vec<u32> {
    let mut fsm = NodeFsm::new_holder(params);
    let mut enabled = Vec::new();
    let mut arrival_iter = arrivals.iter().copied().cycle();
    let mut cycle = 0u32;
    let mut pending_pass = false;
    let mut countdown: Option<u8> = None;
    while cycle < horizon {
        if fsm.phase() == NodePhase::Stopped {
            // Token must eventually arrive; deliver now.
            let _ = fsm.token_arrived();
            countdown = None;
            continue;
        }
        // Deliver a pending token when its adversarial countdown hits 0.
        if let Some(c) = countdown {
            if c == 0 {
                let _ = fsm.token_arrived();
                countdown = None;
            } else {
                countdown = Some(c - 1);
            }
        }
        if fsm.interfaces_enabled() {
            enabled.push(cycle);
        }
        let action = fsm.on_posedge();
        if action.pass_token {
            pending_pass = true;
        }
        if pending_pass {
            // The peer returns the token after an adversarial number of
            // local cycles (bounded by the arrival table).
            let delay = arrival_iter.next().unwrap_or(1);
            countdown = Some(delay);
            pending_pass = false;
        }
        cycle += 1;
    }
    enabled
}

proptest! {
    /// The determinism theorem at the FSM level: two *different*
    /// adversarial token-timing tables produce the same enabled-cycle
    /// schedule whenever both deliver within the recycle window or
    /// later (late deliveries stall but do not shift the schedule).
    #[test]
    fn enabled_schedule_invariant_under_token_timing(
        hold in 1u32..6,
        recycle in 1u32..8,
        arrivals_a in proptest::collection::vec(0u8..12, 1..8),
        arrivals_b in proptest::collection::vec(0u8..12, 1..8),
    ) {
        let params = NodeParams::new(hold, recycle);
        let a = schedule_with_arrivals(params, &arrivals_a, 60);
        let b = schedule_with_arrivals(params, &arrivals_b, 60);
        prop_assert_eq!(a, b, "token timing must not move enabled cycles");
    }

    /// The bounded model checker verifies every (small) parameter
    /// combination.
    #[test]
    fn bounded_checker_accepts_all_small_rings(
        ha in 1u32..4, ra in 1u32..5,
        hb in 1u32..4, rb in 1u32..5,
        init in 1u32..6,
    ) {
        let v = verify_ring_determinism(
            NodeParams::new(ha, ra),
            NodeParams::new(hb, rb),
            init,
            16,
            2,
        );
        prop_assert!(matches!(v, Verdict::DeterministicUpTo { .. }), "{}", v);
    }

    /// Spec validation is total (never panics) and stable: a valid spec
    /// stays valid after adding another valid SB/ring/channel.
    #[test]
    fn spec_validation_is_monotone_under_valid_extension(
        n_sb in 2usize..6,
        extra_period in 1u64..100,
        bits in 1u32..64,
        depth in 1usize..8,
    ) {
        let mut s = SystemSpec::default();
        let sbs: Vec<_> = (0..n_sb)
            .map(|i| s.add_sb(&format!("s{i}"), SimDuration::ns(10 + i as u64)))
            .collect();
        let r = s.add_ring(sbs[0], sbs[1], NodeParams::new(2, 4), SimDuration::ns(5));
        s.add_channel(sbs[0], sbs[1], r, bits, depth, SimDuration::ns(1));
        prop_assert_eq!(s.validate(), Ok(()));
        // Extend.
        let extra = s.add_sb("extra", SimDuration::ns(extra_period));
        let r2 = s.add_ring(sbs[0], extra, NodeParams::new(1, 1), SimDuration::ns(7));
        s.add_channel(extra, sbs[0], r2, bits, depth, SimDuration::ns(1));
        prop_assert_eq!(s.validate(), Ok(()));
    }

    /// Node statistics are consistent: passes never exceed cycles, and
    /// a node that never stops reports `clock_enabled` throughout.
    #[test]
    fn node_statistics_consistency(
        hold in 1u32..5,
        recycle in 1u32..6,
        edges in 1u32..100,
    ) {
        let params = NodeParams::new(hold, recycle);
        let mut fsm = NodeFsm::new_holder(params);
        let mut passes_seen = 0u64;
        for _ in 0..edges {
            if fsm.phase() == NodePhase::Stopped {
                let _ = fsm.token_arrived();
            }
            let action = fsm.on_posedge();
            if action.pass_token {
                passes_seen += 1;
            }
        }
        prop_assert_eq!(fsm.passes(), passes_seen);
        prop_assert!(fsm.passes() <= u64::from(edges));
        prop_assert!(fsm.stops() <= fsm.passes() + 1);
    }
}
