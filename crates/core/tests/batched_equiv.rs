//! Differential equivalence of the batched lane-parallel backend:
//! every lane of a [`BatchedSystem`] must be **byte-identical** to the
//! scalar `CompiledSystem` *and* the event kernel run of the same
//! builder, on every observable — run outcome, end time, per-SB cycle
//! counts, I/O trace rows and digests, edge times, clock / violation /
//! drop statistics, per-channel FIFO statistics, per-node token
//! statistics, processed-event counts, and final logic state.
//!
//! Coverage includes the adversarial corners the batching move could
//! plausibly break: random spec families (late tokens from
//! uncalibrated recycles, clock stops, zero-delay wires, depth-1
//! FIFOs), per-lane *divergent send schedules* that force group splits
//! mid-run (including cascades that end with every lane in its own
//! group, and divergence on the very first edge), batch-formation
//! corners (N=1, N=65 over a 64-lane cap, mixed-spec batches), and
//! per-lane fault plans (which must be lowered as singleton groups).
//!
//! The case budget honours `PROPTEST_CASES` (CI runs a fixed reduced
//! budget; see `scripts/ci.sh`).

use proptest::prelude::*;
use st_sim::prelude::*;
use synchro_tokens::logic::SbIo;
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::{
    e1_spec_uncalibrated, pingpong_spec, producer_consumer_spec, MixerLogic,
};
use synchro_tokens::spec::NodeParams;

const MAX_TIME: SimDuration = SimDuration::us(3000);

/// A source whose *send decision* is lane state: bit `cycle % 64` of
/// `gates` gates the transmit attempt (made regardless of `can_send`,
/// so blocked sends exercise the dropped-word path too). Two lanes
/// with different gate words diverge in control flow at the first
/// cycle where their bits differ — the engine must split their group
/// there and keep both byte-identical to scalar runs.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GatedSource {
    gates: u64,
    next: u64,
    sent: u64,
}

impl GatedSource {
    fn new(gates: u64, start: u64) -> Self {
        GatedSource {
            gates,
            next: start,
            sent: 0,
        }
    }
}

impl SyncLogic for GatedSource {
    fn tick(&mut self, cycle: u64, io: &mut SbIo<'_>) {
        if io.num_outputs() > 0 && (self.gates >> (cycle % 64)) & 1 == 1 {
            if io.send(0, self.next) {
                self.sent += 1;
            }
            self.next = self.next.wrapping_add(7);
        }
    }
}

/// A mixer whose *send decision* is lane state on a consuming SB: it
/// drains its inputs every enabled cycle (like [`MixerLogic`]) but
/// gates the transmit attempt by bit `cycle % 64` of `gates`, made
/// regardless of `can_send`. Unlike [`GatedSource`] this logic sits on
/// an SB *with inputs*, so divergence splits land on edges where the
/// SB also consumed a word — the split must carry the pending input
/// acknowledgments into every partition (regression: the split once
/// rebuilt the per-edge pop scratch cleared, so no `Pop` was scheduled
/// and the FIFO head stayed occupied forever).
#[derive(Debug, Clone, PartialEq, Eq)]
struct GatedMixer {
    gates: u64,
    acc: u64,
    next: u64,
    received: u64,
    sent: u64,
}

impl GatedMixer {
    fn new(gates: u64, start: u64) -> Self {
        GatedMixer {
            gates,
            acc: 0,
            next: start,
            received: 0,
            sent: 0,
        }
    }
}

impl SyncLogic for GatedMixer {
    fn tick(&mut self, cycle: u64, io: &mut SbIo<'_>) {
        for i in 0..io.num_inputs() {
            if let Some(w) = io.recv(i) {
                self.acc = self.acc.rotate_left(9).wrapping_add(w);
                self.received += 1;
            }
        }
        if io.num_outputs() > 0 && (self.gates >> (cycle % 64)) & 1 == 1 {
            if io.send(0, self.next.wrapping_add(self.acc & 0xFF)) {
                self.sent += 1;
            }
            self.next = self.next.wrapping_add(3);
        }
    }
}

/// One builder per salt over `spec`, mixers on every SB (send pattern
/// is data-independent, so same-spec lanes stay in lockstep while
/// their data columns differ).
fn mixer_builders(spec: &SystemSpec, trace_limit: usize, salts: &[u64]) -> Vec<SystemBuilder> {
    salts
        .iter()
        .map(|&salt| {
            let mut b = SystemBuilder::new(spec.clone())
                .expect("spec must validate")
                .with_trace_limit(trace_limit);
            for i in 0..spec.sbs.len() {
                b = b.with_logic(SbId(i), MixerLogic::new((0x1000 * i as u64) ^ salt));
            }
            b
        })
        .collect()
}

/// Mixer on SB 0, gated mixer on SB 1 of a bidirectional spec; one
/// builder per gate word. SB 1 consumes a word on most enabled edges
/// (the SB 0 mixer transmits whenever it can), so gate-word divergence
/// splits the group on edges with pending input acknowledgments.
fn gated_mixer_builders(
    spec: &SystemSpec,
    trace_limit: usize,
    gates: &[u64],
) -> Vec<SystemBuilder> {
    gates
        .iter()
        .enumerate()
        .map(|(lane, &g)| {
            SystemBuilder::new(spec.clone())
                .expect("spec must validate")
                .with_trace_limit(trace_limit)
                .with_logic(SbId(0), MixerLogic::new(0xA5A5))
                .with_logic(SbId(1), GatedMixer::new(g, 500 + lane as u64))
        })
        .collect()
}

/// Gated source on SB 0, mixers elsewhere; one builder per gate word.
fn gated_builders(spec: &SystemSpec, trace_limit: usize, gates: &[u64]) -> Vec<SystemBuilder> {
    gates
        .iter()
        .enumerate()
        .map(|(lane, &g)| {
            let mut b = SystemBuilder::new(spec.clone())
                .expect("spec must validate")
                .with_trace_limit(trace_limit)
                .with_logic(SbId(0), GatedSource::new(g, 100 + lane as u64));
            for i in 1..spec.sbs.len() {
                b = b.with_logic(SbId(i), MixerLogic::new(0x1000 * i as u64));
            }
            b
        })
        .collect()
}

/// Runs the batch and both scalar backends of every lane, asserting
/// all observables match lane-by-lane. Returns the batch for extra
/// structural assertions (group counts after splits, etc.).
fn assert_batch_matches_scalar(
    make: &dyn Fn() -> Vec<SystemBuilder>,
    limit: usize,
    cycles: u64,
) -> BatchedSystem {
    let mut batch = BatchedSystem::build_with_limit(make(), limit)
        .unwrap_or_else(|_| panic!("builders unexpectedly outside the batched envelope"));
    let outcomes = batch.run_until_cycles(cycles, MAX_TIME);
    let compiled = make();
    let event = make();
    for (lane, (bc, be)) in compiled.into_iter().zip(event).enumerate() {
        let mut cc = bc.build_backend(Backend::Compiled);
        let mut ev = be.build_backend(Backend::Event);
        assert_eq!(cc.backend(), Backend::Compiled, "lane {lane} must compile");
        let oc = cc.run_until_cycles(cycles, MAX_TIME).expect("compiled run");
        let oe = ev.run_until_cycles(cycles, MAX_TIME).expect("event run");
        assert_eq!(outcomes[lane], oc, "outcome of lane {lane} vs compiled");
        assert_eq!(oc, oe, "outcome of lane {lane}: compiled vs event");
        assert_eq!(batch.now(lane), cc.now(), "end time of lane {lane}");
        assert_eq!(ev.now(), cc.now(), "scalar end times of lane {lane}");
        assert_eq!(
            batch.events_processed(lane),
            cc.events_fired(),
            "event count of lane {lane}"
        );
        let spec = batch.spec(lane).clone();
        for i in 0..spec.sbs.len() {
            let sb = SbId(i);
            assert_eq!(
                batch.cycles(lane, sb),
                cc.cycles(sb),
                "cycles of lane {lane} SB {i}"
            );
            assert_eq!(
                batch.io_trace(lane, sb).rows(),
                cc.io_trace(sb).rows(),
                "trace rows of lane {lane} SB {i}"
            );
            assert_eq!(
                batch.io_trace(lane, sb).digest(),
                cc.io_trace(sb).digest(),
                "trace digest of lane {lane} SB {i}"
            );
            assert_eq!(
                cc.io_trace(sb).digest(),
                ev.io_trace(sb).digest(),
                "scalar trace digests of lane {lane} SB {i}"
            );
            assert_eq!(
                batch.clock_stats(lane, sb),
                cc.clock_stats(sb),
                "clock stats of lane {lane} SB {i}"
            );
            assert_eq!(
                batch.edge_times(lane, sb),
                cc.edge_times(sb),
                "edge times of lane {lane} SB {i}"
            );
            assert_eq!(
                batch.timing_violations(lane, sb),
                cc.timing_violations(sb),
                "violations of lane {lane} SB {i}"
            );
            assert_eq!(
                batch.dropped_words(lane, sb),
                cc.dropped_words(sb),
                "drops of lane {lane} SB {i}"
            );
        }
        for c in 0..spec.channels.len() {
            assert_eq!(
                batch.fifo_stats(lane, ChannelId(c)),
                cc.fifo_stats(ChannelId(c)),
                "FIFO stats of lane {lane} channel {c}"
            );
        }
        for r in 0..spec.rings.len() {
            let ring = RingId(r);
            for i in 0..spec.sbs.len() {
                let (nb, nc) = (batch.node(lane, SbId(i), ring), cc.node(SbId(i), ring));
                assert_eq!(nb.is_some(), nc.is_some(), "node presence {i}/{r}");
                if let (Some(nb), Some(nc)) = (nb, nc) {
                    assert_eq!(nb.phase(), nc.phase(), "node phase lane {lane} {i}/{r}");
                    assert_eq!(nb.passes(), nc.passes(), "node passes lane {lane} {i}/{r}");
                    assert_eq!(nb.stops(), nc.stops(), "node stops lane {lane} {i}/{r}");
                    assert_eq!(
                        nb.early_tokens(),
                        nc.early_tokens(),
                        "node early tokens lane {lane} {i}/{r}"
                    );
                }
            }
        }
        assert_eq!(
            batch.stopped_sbs(lane),
            cc.stopped_sbs(),
            "parked clocks of lane {lane}"
        );
    }
    batch
}

// --- deterministic lockstep and formation corners -----------------------

#[test]
fn uniform_pingpong_batch_stays_one_group() {
    let spec = pingpong_spec();
    let make = || mixer_builders(&spec, 100, &[1, 2, 3, 4]);
    let batch = assert_batch_matches_scalar(&make, 64, 300);
    assert_eq!(batch.lanes(), 4);
    assert_eq!(
        batch.group_count(),
        1,
        "data-only lane differences must not split the group"
    );
}

#[test]
fn single_lane_batch_matches_scalar() {
    let spec = producer_consumer_spec();
    let make = || mixer_builders(&spec, 100, &[7]);
    let batch = assert_batch_matches_scalar(&make, 64, 150);
    assert_eq!(batch.group_count(), 1);
}

#[test]
fn sixty_five_lanes_split_over_the_lane_cap() {
    let spec = producer_consumer_spec();
    let salts: Vec<u64> = (0..65).collect();
    let make = || mixer_builders(&spec, 32, &salts);
    let batch = assert_batch_matches_scalar(&make, 64, 60);
    assert_eq!(batch.lanes(), 65);
    assert_eq!(batch.group_count(), 2, "65 lanes over a 64-lane cap");
}

#[test]
fn mixed_spec_batch_forms_one_group_per_spec() {
    let a = pingpong_spec();
    let b = producer_consumer_spec();
    let make = || {
        let mut v = Vec::new();
        for lane in 0..6 {
            let spec = if lane % 2 == 0 { &a } else { &b };
            v.extend(mixer_builders(spec, 64, &[lane as u64]));
        }
        v
    };
    let batch = assert_batch_matches_scalar(&make, 64, 120);
    assert_eq!(batch.group_count(), 2, "two distinct specs, two groups");
    assert_eq!(batch.spec(0), batch.spec(2));
    assert_ne!(batch.spec(0), batch.spec(1));
}

#[test]
fn mismatched_trace_limits_do_not_share_a_group() {
    let spec = producer_consumer_spec();
    let make = || {
        let mut v = mixer_builders(&spec, 32, &[1]);
        v.extend(mixer_builders(&spec, 64, &[2]));
        v
    };
    let batch = assert_batch_matches_scalar(&make, 64, 100);
    assert_eq!(batch.group_count(), 2);
}

// --- adversarial control-flow schedules ---------------------------------

#[test]
fn late_tokens_and_clock_stops_batch_equivalently() {
    // Uncalibrated recycle registers make every token late: the
    // park/restart path runs on a permanent loop, shared across the
    // group's control state.
    for recycle in [1, 3, 6] {
        let spec = e1_spec_uncalibrated(recycle);
        let make = || mixer_builders(&spec, 80, &[11, 22, 33]);
        let batch = assert_batch_matches_scalar(&make, 64, 100);
        assert_eq!(batch.group_count(), 1);
    }
}

#[test]
fn stretched_and_zero_delay_ring_wires_batch_equivalently() {
    let mut spec = producer_consumer_spec();
    spec.rings[0].delay_fwd = SimDuration::us(1);
    spec.rings[0].delay_back = SimDuration::us(1);
    assert_batch_matches_scalar(&|| mixer_builders(&spec, 100, &[1, 2, 3]), 64, 150);
    spec.rings[0].delay_fwd = SimDuration::ZERO;
    spec.rings[0].delay_back = SimDuration::ZERO;
    assert_batch_matches_scalar(&|| mixer_builders(&spec, 100, &[1, 2, 3]), 64, 150);
}

#[test]
fn chronic_timing_violations_corrupt_all_lanes_identically() {
    let mut spec = producer_consumer_spec();
    spec.sbs[0].logic_delay = SimDuration::ns(25);
    assert_batch_matches_scalar(&|| mixer_builders(&spec, 100, &[5, 6, 7, 8]), 64, 120);
}

#[test]
fn starved_triangle_deadlocks_every_lane_equivalently() {
    let spec = synchro_tokens::scenarios::starved_triangle_spec();
    assert_batch_matches_scalar(&|| mixer_builders(&spec, 64, &[1, 2, 3]), 64, 100);
}

// --- divergence splits ---------------------------------------------------

#[test]
fn divergent_send_schedules_split_and_stay_byte_identical() {
    let spec = producer_consumer_spec();
    // Lanes 0, 1 and 4 share a schedule; 2, 3 and 5 each differ.
    let gates = [
        u64::MAX,
        u64::MAX,
        0xAAAA_AAAA_AAAA_AAAA,
        0x5555_5555_5555_5555,
        u64::MAX,
        0xF0F0_F0F0_F0F0_F0F0,
    ];
    let make = || gated_builders(&spec, 100, &gates);
    let batch = assert_batch_matches_scalar(&make, 64, 150);
    assert_eq!(
        batch.group_count(),
        4,
        "four distinct schedules, four groups after the split"
    );
    // The split must move the right per-lane logic state around.
    let compiled = make();
    for (lane, b) in compiled.into_iter().enumerate() {
        let mut cc = b.build_backend(Backend::Compiled);
        cc.run_until_cycles(150, MAX_TIME).expect("compiled run");
        let gb: &GatedSource = batch.logic(lane, SbId(0));
        let gc: &GatedSource = cc.logic(SbId(0));
        assert_eq!(gb, gc, "logic state of lane {lane}");
    }
}

#[test]
fn all_lanes_diverge_on_the_first_edge() {
    let spec = producer_consumer_spec();
    // Odd lanes transmit on cycle 0, even lanes don't: the group
    // splits in two at the very first rising edge.
    let gates: Vec<u64> = (0..8u64)
        .map(|l| if l % 2 == 0 { u64::MAX << 1 } else { u64::MAX })
        .collect();
    let make = || gated_builders(&spec, 64, &gates);
    let batch = assert_batch_matches_scalar(&make, 64, 100);
    assert_eq!(batch.group_count(), 2);
}

#[test]
fn divergence_cascade_ends_with_every_lane_alone() {
    let spec = producer_consumer_spec();
    // Lane k starts transmitting at cycle k: one split per cycle until
    // all 6 lanes run in singleton groups.
    let gates: Vec<u64> = (0..6).map(|l| u64::MAX << l).collect();
    let make = || gated_builders(&spec, 64, &gates);
    let batch = assert_batch_matches_scalar(&make, 64, 120);
    assert_eq!(batch.group_count(), 6, "cascade must fully unzip the batch");
}

#[test]
fn divergence_on_a_consuming_edge_preserves_input_acks() {
    // The diverging SB pops a word on most enabled edges; the split
    // must still schedule that edge's Pop in every partition, or the
    // FIFO head stays occupied forever and the lanes drift off their
    // scalar runs (asserted via trace digests and FIFO pop counts).
    let spec = pingpong_spec();
    // Lanes 0 and 1 share a schedule; lanes 2 and 3 first differ at
    // cycles 16 and 44 — both edges where SB 1 holds a popped word
    // (its enabled windows cover cycles 14-25, 40-51, ... under this
    // token schedule).
    let gates = [u64::MAX, u64::MAX, !(1u64 << 16), !(1u64 << 44)];
    let make = || gated_mixer_builders(&spec, 150, &gates);
    let batch = assert_batch_matches_scalar(&make, 64, 150);
    assert!(
        batch.group_count() >= 3,
        "distinct gate words must have split the batch"
    );
    // The split must move the right per-lane logic state around.
    let compiled = make();
    for (lane, b) in compiled.into_iter().enumerate() {
        let mut cc = b.build_backend(Backend::Compiled);
        cc.run_until_cycles(150, MAX_TIME).expect("compiled run");
        let gb: &GatedMixer = batch.logic(lane, SbId(1));
        let gc: &GatedMixer = cc.logic(SbId(1));
        assert_eq!(gb, gc, "logic state of lane {lane}");
        assert!(gb.received > 0, "lane {lane} must actually consume words");
    }
}

// --- per-lane fault plans -------------------------------------------------

#[test]
fn per_lane_fault_plans_run_as_singleton_groups() {
    let spec = pingpong_spec();
    let classes = [FaultClass::Analog, FaultClass::Protocol];
    let make = || {
        let mut v = Vec::new();
        for (lane, class) in classes.iter().enumerate() {
            let plan = FaultPlan::generate(*class, &spec, 0xBAD + lane as u64);
            v.push(
                mixer_builders(&spec, 64, &[lane as u64])
                    .pop()
                    .expect("one builder")
                    .with_fault_plan(plan),
            );
        }
        // Two clean lanes ride along and must still share a group.
        v.extend(mixer_builders(&spec, 64, &[100, 101]));
        v
    };
    let batch = assert_batch_matches_scalar(&make, 64, 120);
    assert_eq!(
        batch.group_count(),
        3,
        "two faulted singletons plus one shared clean group"
    );
}

// --- randomized differential sweeps --------------------------------------

/// A deterministic build recipe for a random GALS system (mirrors
/// `compiled_equiv.rs`). Selector fields index modulo the relevant
/// pool, so every recipe is valid.
#[derive(Debug, Clone)]
struct SpecRecipe {
    /// Per SB: (period selector, logic-delay selector).
    sbs: Vec<(u8, u8)>,
    /// Per ring: (holder sel, peer-offset sel, hold, recycle,
    /// fwd/back delay sels packed low/high byte, initial-recycle
    /// override: 0 = calibrated default, else the raw preset).
    rings: Vec<(u8, u8, u8, u8, u16, u8)>,
    /// Per channel: (ring sel, reversed, depth, stage-delay sel).
    channels: Vec<(u8, bool, u8, u8)>,
}

const PERIODS_NS: [u64; 5] = [4, 6, 10, 12, 14];
const WIRE_DELAYS_NS: [u64; 6] = [0, 1, 5, 12, 30, 60];
const STAGE_DELAYS_PS: [u64; 4] = [0, 200, 1000, 3000];
/// Mostly in-spec, with a tail that forces violations (> max period).
const LOGIC_DELAYS_NS: [u64; 4] = [0, 0, 2, 20];

fn arb_recipe() -> impl Strategy<Value = SpecRecipe> {
    (
        proptest::collection::vec((any::<u8>(), any::<u8>()), 2..5),
        proptest::collection::vec(
            (
                any::<u8>(),
                any::<u8>(),
                1u8..6,
                1u8..20,
                any::<u16>(),
                0u8..20,
            ),
            1..5,
        ),
        proptest::collection::vec((any::<u8>(), any::<bool>(), 1u8..5, any::<u8>()), 1..7),
    )
        .prop_map(|(sbs, rings, channels)| SpecRecipe {
            sbs,
            rings,
            channels,
        })
}

fn build_spec(recipe: &SpecRecipe) -> SystemSpec {
    let mut s = SystemSpec::default();
    let n = recipe.sbs.len();
    for (i, &(p_sel, l_sel)) in recipe.sbs.iter().enumerate() {
        let period = SimDuration::ns(PERIODS_NS[p_sel as usize % PERIODS_NS.len()]);
        let sb = s.add_sb(&format!("sb{i}"), period);
        s.sbs[sb.0].logic_delay =
            SimDuration::ns(LOGIC_DELAYS_NS[l_sel as usize % LOGIC_DELAYS_NS.len()]);
    }
    let mut ring_ids = Vec::new();
    for &(h_sel, off_sel, hold, recycle, delay_sels, init) in &recipe.rings {
        let (fwd_sel, back_sel) = ((delay_sels & 0xFF) as u8, (delay_sels >> 8) as u8);
        let holder = SbId(h_sel as usize % n);
        let peer = SbId((holder.0 + 1 + off_sel as usize % (n - 1)) % n);
        let params = NodeParams::new(u32::from(hold), u32::from(recycle));
        let fwd = SimDuration::ns(WIRE_DELAYS_NS[fwd_sel as usize % WIRE_DELAYS_NS.len()]);
        let back = SimDuration::ns(WIRE_DELAYS_NS[back_sel as usize % WIRE_DELAYS_NS.len()]);
        let rid = s.add_ring_asymmetric(holder, peer, params, params, fwd, back);
        if init != 0 {
            s.rings[rid.0].peer_initial_recycle = Some(u32::from(init));
        }
        ring_ids.push(rid);
    }
    for &(r_sel, reversed, depth, f_sel) in &recipe.channels {
        let rid = ring_ids[r_sel as usize % ring_ids.len()];
        let ring = &s.rings[rid.0];
        let (from, to) = if reversed {
            (ring.peer, ring.holder)
        } else {
            (ring.holder, ring.peer)
        };
        let stage = SimDuration::ps(STAGE_DELAYS_PS[f_sel as usize % STAGE_DELAYS_PS.len()]);
        s.add_channel(from, to, rid, 16, depth as usize, stage);
    }
    s
}

/// The conformance clauses this suite is evidence for: per-lane
/// batched≡scalar byte identity, which in turn re-proves the traces'
/// cycle-count purity. The default budget sits below `compiled_equiv`'s
/// because each batched case runs two scalar backends per lane on top
/// of the batch itself.
const WITNESSED: &[&str] = &["ST-EQ-003", "ST-DET-001"];

/// Registers the suite's witness declaration for the lint.
#[test]
fn conformance_witnesses() {
    st_conformance::witnesses!(["ST-EQ-003", "ST-DET-001"]);
}

proptest! {
    #![proptest_config(st_testkit::case_budget(24, WITNESSED))]

    /// Batched ≡ scalar-compiled ≡ event on random systems with 1–4
    /// data-distinct lanes per batch: arbitrary topologies,
    /// plesiochronous periods, late/early tokens (random hold /
    /// recycle / initial-recycle), wire delays from zero to several
    /// cycles, and FIFO depths down to one.
    #[test]
    fn batched_matches_scalar_backends_on_random_specs(
        recipe in arb_recipe(),
        lanes in 1usize..4,
        seed in any::<u64>(),
    ) {
        let spec = build_spec(&recipe);
        prop_assert!(spec.validate().is_ok(), "recipe built an invalid spec");
        let salts: Vec<u64> = (0..lanes as u64).map(|l| seed ^ (l * 0xABCD)).collect();
        assert_batch_matches_scalar(&|| mixer_builders(&spec, 64, &salts), 64, 120);
    }

    /// Random per-lane send schedules over a fixed pair: divergence
    /// splits at arbitrary cycles (including never, and cycle 0) must
    /// leave every lane byte-identical to its scalar runs.
    #[test]
    fn random_divergence_schedules_match_scalar_backends(
        gates in proptest::collection::vec(any::<u64>(), 2..7),
    ) {
        let spec = producer_consumer_spec();
        assert_batch_matches_scalar(&|| gated_builders(&spec, 64, &gates), 64, 100);
    }

    /// Random per-lane send schedules on a *consuming* SB: splits land
    /// on edges with pending input acknowledgments at arbitrary
    /// cycles, and every lane must stay byte-identical to its scalar
    /// runs (FIFO pop counts and trace digests included).
    #[test]
    fn random_consuming_divergence_schedules_match_scalar_backends(
        gates in proptest::collection::vec(any::<u64>(), 2..7),
    ) {
        let spec = pingpong_spec();
        assert_batch_matches_scalar(&|| gated_mixer_builders(&spec, 64, &gates), 64, 100);
    }
}
