//! Gate-level equivalence: the behavioural [`NodeFsm`] against the
//! wired gate-level node circuit from `st-cells`, driven in lockstep
//! with adversarial token timing.
//!
//! This closes the loop the paper leaves implicit: the same node that
//! the area model counts gates for (Table 1) provably implements the
//! state machine the simulator runs (Figure 2).

use proptest::prelude::*;
use st_cells::build_node_circuit;
use synchro_tokens::node::{NodeFsm, NodePhase, TokenAction};
use synchro_tokens::spec::NodeParams;

/// Runs `cycles` lockstep steps; token delivery delays are drawn from
/// `delays` (cycles after each pass; capped so the ring keeps moving).
fn lockstep(
    hold: u32,
    recycle: u32,
    start_holding: bool,
    initial: u32,
    delays: &[u8],
    cycles: u32,
) {
    let params = NodeParams::new(hold, recycle);
    let mut fsm = if start_holding {
        NodeFsm::new_holder(params)
    } else {
        NodeFsm::new_waiter(params, initial)
    };
    let nc = build_node_circuit(8, hold, recycle, start_holding, initial);
    let mut st = nc.circuit.reset_state();

    let mut delay_iter = delays.iter().copied().cycle();
    // For the waiter, the token starts in flight.
    let mut in_flight: Option<u8> = if start_holding {
        None
    } else {
        Some(delay_iter.next().unwrap_or(0))
    };

    for cycle in 0..cycles {
        // Deliver the token when its adversarial delay expires, or
        // immediately if the node is stopped (wires are finite).
        let mut pulse = false;
        if let Some(d) = in_flight {
            if d == 0 || fsm.phase() == NodePhase::Stopped {
                pulse = true;
                in_flight = None;
                let action = fsm.token_arrived();
                if fsm.phase() == NodePhase::Holding && action == TokenAction::RestartClock {
                    // Async restart consumed the token.
                }
            } else {
                in_flight = Some(d - 1);
            }
        }
        nc.circuit.set_input(&mut st, nc.token_pulse, pulse);

        // Pre-edge observables.
        let fsm_enabled = fsm.interfaces_enabled();
        let gate_enabled = nc.circuit.value(&st, nc.sbena);
        assert_eq!(fsm_enabled, gate_enabled, "cycle {cycle}: sbena mismatch");

        let gate_pass = nc.circuit.value(&st, nc.pass);
        let gate_stop = nc.circuit.value(&st, nc.will_stop);

        // Step both.
        let action = fsm.on_posedge();
        nc.circuit.clock_edge(&mut st);

        assert_eq!(action.pass_token, gate_pass, "cycle {cycle}: pass mismatch");
        assert_eq!(action.stop_clock, gate_stop, "cycle {cycle}: stop mismatch");
        if action.pass_token {
            assert!(in_flight.is_none(), "single token per ring");
            in_flight = Some(delay_iter.next().unwrap_or(0));
        }

        // Post-edge state equivalence.
        let gate_phase = match (
            nc.circuit.value(&st, nc.clken),
            nc.circuit.value(&st, nc.sbena) || {
                // sbena is combinational in token_pulse; clear it for the
                // phase decode below.
                nc.circuit.set_input(&mut st, nc.token_pulse, false);
                nc.circuit.value(&st, nc.sbena)
            },
        ) {
            (false, _) => NodePhase::Stopped,
            (true, true) => NodePhase::Holding,
            (true, false) => NodePhase::Recycling,
        };
        assert_eq!(fsm.phase(), gate_phase, "cycle {cycle}: phase mismatch");
        assert_eq!(
            fsm.hold_ctr(),
            nc.counter_value(&st, &nc.hold_bits),
            "cycle {cycle}: hold counter mismatch"
        );
        assert_eq!(
            fsm.recycle_ctr(),
            nc.counter_value(&st, &nc.recycle_bits),
            "cycle {cycle}: recycle counter mismatch"
        );
    }
}

#[test]
fn holder_equivalence_nominal_timing() {
    lockstep(4, 6, true, 6, &[2], 80);
}

#[test]
fn waiter_equivalence_nominal_timing() {
    lockstep(3, 5, false, 4, &[1], 80);
}

#[test]
fn equivalence_with_always_late_tokens() {
    // Every delivery later than the recycle window: the node stops and
    // restarts each rotation.
    lockstep(2, 2, true, 2, &[9], 60);
}

#[test]
fn equivalence_with_immediate_tokens() {
    lockstep(1, 1, true, 1, &[0], 60);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The gate-level node and the behavioural FSM agree cycle-for-cycle
    /// for random parameters and random adversarial token timing.
    #[test]
    fn gate_level_node_equals_behavioural_fsm(
        hold in 1u32..10,
        recycle in 1u32..12,
        start_holding in any::<bool>(),
        initial in 1u32..12,
        delays in proptest::collection::vec(0u8..14, 1..8),
    ) {
        lockstep(hold, recycle, start_holding, initial, &delays, 120);
    }
}
