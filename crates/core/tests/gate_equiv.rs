//! Gate-level equivalence: the behavioural [`NodeFsm`] against the
//! wired gate-level node circuit from `st-cells`, driven in lockstep
//! with adversarial token timing.
//!
//! This closes the loop the paper leaves implicit: the same node that
//! the area model counts gates for (Table 1) provably implements the
//! state machine the simulator runs (Figure 2).
//!
//! Two lockstep drivers share the checking logic:
//! * [`lockstep`] walks the scalar interpreter one configuration at a
//!   time (the four deterministic corner tests);
//! * [`lockstep_lanes`] runs the compiled bit-parallel engine with **64
//!   independent adversarial token-delay schedules, one per lane**, so
//!   each random sweep case now covers 64 configurations for roughly
//!   the cost the scalar driver paid for one.

use proptest::prelude::*;
use st_cells::build_node_circuit;
use st_cells::compiled::{CompiledCircuit, LANES};
use synchro_tokens::node::{NodeFsm, NodePhase, TokenAction};
use synchro_tokens::spec::NodeParams;

fn make_fsm(hold: u32, recycle: u32, start_holding: bool, initial: u32) -> NodeFsm {
    let params = NodeParams::new(hold, recycle);
    if start_holding {
        NodeFsm::new_holder(params)
    } else {
        NodeFsm::new_waiter(params, initial)
    }
}

/// Runs `cycles` lockstep steps; token delivery delays are drawn from
/// `delays` (cycles after each pass; capped so the ring keeps moving).
fn lockstep(
    hold: u32,
    recycle: u32,
    start_holding: bool,
    initial: u32,
    delays: &[u8],
    cycles: u32,
) {
    let mut fsm = make_fsm(hold, recycle, start_holding, initial);
    let nc = build_node_circuit(8, hold, recycle, start_holding, initial);
    let mut st = nc.circuit.reset_state();

    let mut delay_iter = delays.iter().copied().cycle();
    // For the waiter, the token starts in flight.
    let mut in_flight: Option<u8> = if start_holding {
        None
    } else {
        Some(delay_iter.next().unwrap_or(0))
    };

    for cycle in 0..cycles {
        // Deliver the token when its adversarial delay expires, or
        // immediately if the node is stopped (wires are finite).
        let mut pulse = false;
        if let Some(d) = in_flight {
            if d == 0 || fsm.phase() == NodePhase::Stopped {
                pulse = true;
                in_flight = None;
                let action = fsm.token_arrived();
                if fsm.phase() == NodePhase::Holding && action == TokenAction::RestartClock {
                    // Async restart consumed the token.
                }
            } else {
                in_flight = Some(d - 1);
            }
        }
        nc.circuit.set_inputs(&mut st, &[(nc.token_pulse, pulse)]);

        // Pre-edge observables.
        let fsm_enabled = fsm.interfaces_enabled();
        let gate_enabled = nc.circuit.value(&st, nc.sbena);
        assert_eq!(fsm_enabled, gate_enabled, "cycle {cycle}: sbena mismatch");

        let gate_pass = nc.circuit.value(&st, nc.pass);
        let gate_stop = nc.circuit.value(&st, nc.will_stop);

        // Step both.
        let action = fsm.on_posedge();
        nc.circuit.clock_edge(&mut st);

        assert_eq!(action.pass_token, gate_pass, "cycle {cycle}: pass mismatch");
        assert_eq!(action.stop_clock, gate_stop, "cycle {cycle}: stop mismatch");
        if action.pass_token {
            assert!(in_flight.is_none(), "single token per ring");
            in_flight = Some(delay_iter.next().unwrap_or(0));
        }

        // Post-edge state equivalence.
        let gate_phase = match (
            nc.circuit.value(&st, nc.clken),
            nc.circuit.value(&st, nc.sbena) || {
                // sbena is combinational in token_pulse; clear it for the
                // phase decode below.
                nc.circuit.set_input(&mut st, nc.token_pulse, false);
                nc.circuit.value(&st, nc.sbena)
            },
        ) {
            (false, _) => NodePhase::Stopped,
            (true, true) => NodePhase::Holding,
            (true, false) => NodePhase::Recycling,
        };
        assert_eq!(fsm.phase(), gate_phase, "cycle {cycle}: phase mismatch");
        assert_eq!(
            fsm.hold_ctr(),
            nc.counter_value(&st, &nc.hold_bits),
            "cycle {cycle}: hold counter mismatch"
        );
        assert_eq!(
            fsm.recycle_ctr(),
            nc.counter_value(&st, &nc.recycle_bits),
            "cycle {cycle}: recycle counter mismatch"
        );
    }
}

/// 64-lane lockstep: one compiled circuit pass per cycle checks 64
/// behavioural FSM copies, each fed its own adversarial delay schedule
/// from `lane_delays` (empty schedules behave like always-immediate).
fn lockstep_lanes(
    hold: u32,
    recycle: u32,
    start_holding: bool,
    initial: u32,
    lane_delays: &[Vec<u8>],
    cycles: u32,
) {
    let lanes = lane_delays.len().min(LANES);
    assert!(lanes >= 1, "need at least one lane schedule");
    let next_delay = |lane: usize, pos: &mut usize| -> u8 {
        let seq = &lane_delays[lane];
        if seq.is_empty() {
            return 0;
        }
        let d = seq[*pos % seq.len()];
        *pos += 1;
        d
    };

    let mut fsms: Vec<NodeFsm> = (0..lanes)
        .map(|_| make_fsm(hold, recycle, start_holding, initial))
        .collect();
    let nc = build_node_circuit(8, hold, recycle, start_holding, initial);
    let cc = CompiledCircuit::compile(&nc.circuit);
    let mut st = cc.reset_state();

    let mut delay_pos = vec![0usize; lanes];
    let mut in_flight: Vec<Option<u8>> = (0..lanes)
        .map(|lane| (!start_holding).then(|| next_delay(lane, &mut delay_pos[lane])))
        .collect();

    for cycle in 0..cycles {
        let mut pulse_mask = 0u64;
        for lane in 0..lanes {
            if let Some(d) = in_flight[lane] {
                if d == 0 || fsms[lane].phase() == NodePhase::Stopped {
                    pulse_mask |= 1 << lane;
                    in_flight[lane] = None;
                    let _ = fsms[lane].token_arrived();
                } else {
                    in_flight[lane] = Some(d - 1);
                }
            }
        }
        cc.drive(&mut st, nc.token_pulse, pulse_mask);

        // Pre-edge observables, all lanes from single word reads.
        let sbena = cc.value(&st, nc.sbena);
        let pass = cc.value(&st, nc.pass);
        let stop = cc.value(&st, nc.will_stop);
        for (lane, fsm) in fsms.iter().enumerate() {
            assert_eq!(
                fsm.interfaces_enabled(),
                (sbena >> lane) & 1 == 1,
                "cycle {cycle} lane {lane}: sbena mismatch"
            );
        }

        cc.clock_edge(&mut st);
        for (lane, fsm) in fsms.iter_mut().enumerate() {
            let action = fsm.on_posedge();
            assert_eq!(
                action.pass_token,
                (pass >> lane) & 1 == 1,
                "cycle {cycle} lane {lane}: pass mismatch"
            );
            assert_eq!(
                action.stop_clock,
                (stop >> lane) & 1 == 1,
                "cycle {cycle} lane {lane}: stop mismatch"
            );
            if action.pass_token {
                assert!(in_flight[lane].is_none(), "single token per ring");
                in_flight[lane] = Some(next_delay(lane, &mut delay_pos[lane]));
            }
        }

        // Post-edge state equivalence: decode the phase exactly as the
        // scalar driver does — sbena with the pulse still applied OR'd
        // with sbena after clearing it.
        let sbena_pulsed = cc.value(&st, nc.sbena);
        cc.drive(&mut st, nc.token_pulse, 0);
        let holding = sbena_pulsed | cc.value(&st, nc.sbena);
        let clken = cc.value(&st, nc.clken);
        for (lane, fsm) in fsms.iter().enumerate() {
            let gate_phase = match ((clken >> lane) & 1 == 1, (holding >> lane) & 1 == 1) {
                (false, _) => NodePhase::Stopped,
                (true, true) => NodePhase::Holding,
                (true, false) => NodePhase::Recycling,
            };
            assert_eq!(
                fsm.phase(),
                gate_phase,
                "cycle {cycle} lane {lane}: phase mismatch"
            );
            assert_eq!(
                fsm.hold_ctr(),
                nc.counter_value_lane(&st, &nc.hold_bits, lane),
                "cycle {cycle} lane {lane}: hold counter mismatch"
            );
            assert_eq!(
                fsm.recycle_ctr(),
                nc.counter_value_lane(&st, &nc.recycle_bits, lane),
                "cycle {cycle} lane {lane}: recycle counter mismatch"
            );
        }
    }
}

#[test]
fn holder_equivalence_nominal_timing() {
    lockstep(4, 6, true, 6, &[2], 80);
}

#[test]
fn waiter_equivalence_nominal_timing() {
    lockstep(3, 5, false, 4, &[1], 80);
}

#[test]
fn equivalence_with_always_late_tokens() {
    // Every delivery later than the recycle window: the node stops and
    // restarts each rotation.
    lockstep(2, 2, true, 2, &[9], 60);
}

#[test]
fn equivalence_with_immediate_tokens() {
    lockstep(1, 1, true, 1, &[0], 60);
}

/// The compiled driver is checked against the same corners the scalar
/// driver covers, with the corner schedule in lane 0 and progressively
/// shifted schedules in the remaining lanes.
#[test]
fn lane_equivalence_covers_the_scalar_corners() {
    for (hold, recycle, start, initial, base) in [
        (4u32, 6u32, true, 6u32, 2u8),
        (3, 5, false, 4, 1),
        (2, 2, true, 2, 9),
        (1, 1, true, 1, 0),
    ] {
        let schedules: Vec<Vec<u8>> = (0..LANES)
            .map(|lane| vec![base.saturating_add((lane % 5) as u8)])
            .collect();
        lockstep_lanes(hold, recycle, start, initial, &schedules, 80);
    }
}

/// Conformance clause this suite is evidence for: gate-level wrapper
/// netlists track the behavioural FSM cycle-for-cycle.
const WITNESSED: &[&str] = &["ST-GATE-008"];

/// Registers the suite's witness declaration for the lint.
#[test]
fn conformance_witnesses() {
    st_conformance::witnesses!(["ST-GATE-008"]);
}

proptest! {
    #![proptest_config(st_testkit::case_budget(64, WITNESSED))]

    /// The gate-level node and the behavioural FSM agree cycle-for-cycle
    /// for random parameters and random adversarial token timing —
    /// 64 independent delay schedules per case via the compiled lanes,
    /// so each case covers 64 configurations.
    #[test]
    fn gate_level_node_equals_behavioural_fsm(
        hold in 1u32..10,
        recycle in 1u32..12,
        start_holding in any::<bool>(),
        initial in 1u32..12,
        lane_delays in proptest::collection::vec(
            proptest::collection::vec(0u8..14, 1..8),
            64,
        ),
    ) {
        lockstep_lanes(hold, recycle, start_holding, initial, &lane_delays, 120);
    }
}
