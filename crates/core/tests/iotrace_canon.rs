//! Canonical-serialization round trip for [`SbIoTrace`].
//!
//! `st-serve` derives content-addressed cache keys from canonical trace
//! bytes and compares served results byte-for-byte against locally
//! computed ones, so the encoding must be exact: decode must invert
//! encode, and re-encoding a decoded trace must reproduce the input
//! byte-identically.

use proptest::prelude::*;
use synchro_tokens::iotrace::{CanonError, CANON_MAGIC, CANON_VERSION};
use synchro_tokens::{SbIoTrace, TraceRow};

fn arb_word() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))
}

fn arb_row() -> impl Strategy<Value = TraceRow> {
    (
        any::<u64>(),
        proptest::collection::vec(arb_word(), 0..5),
        proptest::collection::vec(arb_word(), 0..5),
    )
        .prop_map(|(cycle, reads, writes)| TraceRow {
            cycle,
            reads,
            writes,
        })
}

fn arb_trace() -> impl Strategy<Value = SbIoTrace> {
    (proptest::collection::vec(arb_row(), 0..40), 0usize..64).prop_map(|(rows, extra)| {
        // Build through the public API so the trace is always a state
        // `record` could have produced: the limit is 0 (unlimited) or
        // at least the row count.
        let limit = if extra == 0 { 0 } else { rows.len() + extra };
        let mut t = SbIoTrace::with_limit(limit);
        for row in rows {
            t.record(row);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn encode_decode_reencode_is_byte_identical(trace in arb_trace()) {
        let bytes = trace.to_canonical_bytes();
        let decoded = SbIoTrace::from_canonical_bytes(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &trace, "decode must invert encode");
        prop_assert_eq!(decoded.to_canonical_bytes(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn truncation_never_panics_and_always_errors(trace in arb_trace(), cut in any::<usize>()) {
        let bytes = trace.to_canonical_bytes();
        let cut = cut % bytes.len();
        // Strictly shorter input can decode successfully only if a
        // trailing-length prefix shrank, which the row/word counts make
        // impossible — so every truncation must error, never panic.
        prop_assert!(SbIoTrace::from_canonical_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn single_byte_corruption_is_detected_or_value_changing(
        trace in arb_trace(),
        pos in any::<usize>(),
        flip in any::<u8>(),
    ) {
        let bytes = trace.to_canonical_bytes();
        let mut corrupt = bytes.clone();
        let pos = pos % corrupt.len();
        corrupt[pos] ^= flip.max(1);
        // A flip that still parses must decode to a *different* value
        // (the encoding has no don't-care bits), so the content hash
        // over canonical bytes always catches it.
        if let Ok(decoded) = SbIoTrace::from_canonical_bytes(&corrupt) {
            prop_assert_ne!(&decoded, &trace);
            prop_assert_eq!(decoded.to_canonical_bytes(), corrupt);
        }
    }
}

#[test]
fn empty_trace_has_minimal_stable_encoding() {
    let t = SbIoTrace::with_limit(0);
    let bytes = t.to_canonical_bytes();
    assert_eq!(&bytes[..4], CANON_MAGIC);
    assert_eq!(bytes[4], CANON_VERSION);
    assert_eq!(
        bytes.len(),
        4 + 1 + 8 + 8,
        "magic + version + limit + count"
    );
    assert_eq!(SbIoTrace::from_canonical_bytes(&bytes).unwrap(), t);
}

#[test]
fn specific_corruptions_are_classified() {
    let mut t = SbIoTrace::with_limit(8);
    t.record(TraceRow {
        cycle: 3,
        reads: vec![Some(7), None],
        writes: vec![Some(0xFFFF_FFFF_FFFF_FFFF)],
    });
    let good = t.to_canonical_bytes();

    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert_eq!(
        SbIoTrace::from_canonical_bytes(&bad_magic),
        Err(CanonError::BadMagic)
    );

    let mut bad_version = good.clone();
    bad_version[4] = 99;
    assert_eq!(
        SbIoTrace::from_canonical_bytes(&bad_version),
        Err(CanonError::BadVersion(99))
    );

    let mut trailing = good.clone();
    trailing.push(0);
    assert_eq!(
        SbIoTrace::from_canonical_bytes(&trailing),
        Err(CanonError::TrailingBytes(1))
    );

    // The first option tag of the row's reads sits right after
    // header (21) + cycle (8) + reads_len (4).
    let mut bad_tag = good.clone();
    bad_tag[33] = 2;
    assert_eq!(
        SbIoTrace::from_canonical_bytes(&bad_tag),
        Err(CanonError::BadTag(2))
    );

    assert_eq!(
        SbIoTrace::from_canonical_bytes(&good[..10]),
        Err(CanonError::Truncated)
    );
}

#[test]
fn huge_declared_row_count_fails_without_allocation_blowup() {
    // A corrupt count of u64::MAX rows must hit Truncated, not OOM.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(CANON_MAGIC);
    bytes.push(CANON_VERSION);
    bytes.extend_from_slice(&0u64.to_le_bytes());
    bytes.extend_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(
        SbIoTrace::from_canonical_bytes(&bytes),
        Err(CanonError::Truncated)
    );
}
