//! Fault-layer oracle tests at the core level: analog invariance,
//! protocol/state classification, and the token-loss → deadlock
//! diagnosis property, differentially on both backends.

use proptest::prelude::*;
use st_sim::time::SimDuration;
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::{build_e1_backend, chain_spec, pingpong_spec};
use synchro_tokens::{classify, run_with_plan, ChaosOutcome, Fault, FaultClass, FaultPlan};

const BUDGET: SimDuration = SimDuration::us(2000);

/// Golden traces for `spec` on the event backend.
fn golden(spec: &SystemSpec, cycles: u64) -> Vec<SbIoTrace> {
    let mut sys = build_e1_backend(spec.clone(), 0, cycles as usize, Backend::Event);
    assert_eq!(
        sys.run_until_cycles(cycles, BUDGET).unwrap(),
        RunOutcome::Reached
    );
    (0..spec.sbs.len())
        .map(|i| sys.io_trace(SbId(i)).clone())
        .collect()
}

/// Builds, attacks and classifies one `(spec, plan, backend)` run.
fn attack(
    spec: &SystemSpec,
    plan: &FaultPlan,
    cycles: u64,
    backend: Backend,
    gold: &[SbIoTrace],
) -> ChaosOutcome {
    let n = spec.sbs.len();
    let mut b = SystemBuilder::new(spec.clone())
        .unwrap()
        .with_trace_limit(cycles as usize)
        .with_fault_plan(plan.clone());
    for i in 0..n {
        b = b.with_logic(
            SbId(i),
            synchro_tokens::scenarios::MixerLogic::new(0x1000 * i as u64),
        );
    }
    let mut sys = b.build_backend(backend);
    let outcome = run_with_plan(&mut sys, plan, cycles, BUDGET).unwrap();
    classify(gold, &sys, &outcome)
}

#[test]
fn analog_faults_leave_traces_byte_identical() {
    for spec in [pingpong_spec(), chain_spec(3)] {
        let gold = golden(&spec, 80);
        for seed in 0..6 {
            let plan = FaultPlan::generate(FaultClass::Analog, &spec, seed);
            assert!(plan.is_analog_only());
            for backend in [Backend::Event, Backend::Compiled] {
                let out = attack(&spec, &plan, 80, backend, &gold);
                assert_eq!(
                    out,
                    ChaosOutcome::TraceIdentical,
                    "seed {seed} on {backend:?}: {out}"
                );
            }
        }
    }
}

#[test]
fn protocol_and_state_plans_classify_identically_on_both_backends() {
    for class in [FaultClass::Protocol, FaultClass::State] {
        let spec = pingpong_spec();
        let gold = golden(&spec, 80);
        for seed in 0..16 {
            let plan = FaultPlan::generate(class, &spec, seed);
            let event = attack(&spec, &plan, 80, Backend::Event, &gold);
            let compiled = attack(&spec, &plan, 80, Backend::Compiled, &gold);
            assert_eq!(event, compiled, "{class} seed {seed}");
            assert_ne!(event, ChaosOutcome::Timeout, "{class} seed {seed} hung");
        }
    }
}

#[test]
fn budget_exhaustion_classifies_as_timeout() {
    let spec = pingpong_spec();
    let gold = golden(&spec, 60);
    let plan = FaultPlan::default();
    let mut sys = build_e1_backend(spec.clone(), 0, 60, Backend::Event);
    let outcome = run_with_plan(&mut sys, &plan, 1_000_000, SimDuration::ns(50)).unwrap();
    assert_eq!(classify(&gold, &sys, &outcome), ChaosOutcome::Timeout);
}

/// Conformance clause this suite is evidence for: injected fault plans
/// replay bit-exactly and classify identically on both backends.
const WITNESSED: &[&str] = &["ST-CHAOS-006"];

/// Registers the suite's witness declaration for the lint.
#[test]
fn conformance_witnesses() {
    st_conformance::witnesses!(["ST-CHAOS-006"]);
}

proptest! {
    #![proptest_config(st_testkit::case_budget(24, WITNESSED))]

    /// Satellite property: *every* injected token loss is diagnosed as a
    /// deadlock that names the owning ring's SBs — never a silent wrong
    /// trace, never a hang (the budget bounds the run, and `Timeout`
    /// would fail the assertion).
    #[test]
    fn token_loss_is_always_diagnosed_as_deadlock(
        chain in any::<bool>(),
        ring_pick in 0usize..4,
        to_holder in any::<bool>(),
        nth in 0u64..3,
    ) {
        let spec = if chain { chain_spec(3) } else { pingpong_spec() };
        let ring = RingId(ring_pick % spec.rings.len());
        let plan = FaultPlan {
            protocol: vec![Fault::TokenLoss { ring, to_holder, nth }],
            ..FaultPlan::default()
        };
        let gold = golden(&spec, 120);
        for backend in [Backend::Event, Backend::Compiled] {
            let out = attack(&spec, &plan, 120, backend, &gold);
            let ChaosOutcome::Deadlock { stopped } = &out else {
                panic!("token loss on {ring} ({backend:?}) classified {out}, not deadlock");
            };
            let owner = &spec.rings[ring.0];
            prop_assert!(
                stopped.contains(&owner.holder) && stopped.contains(&owner.peer),
                "{backend:?}: deadlock report {stopped:?} misses the owning SBs \
                 {:?}/{:?}", owner.holder, owner.peer
            );
        }
    }
}
