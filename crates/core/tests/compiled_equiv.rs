//! Differential equivalence of the compiled fast-path backend: over
//! random `SystemSpec`s and deterministic adversarial schedules (late
//! tokens, clock stops/restarts, zero-delay wires and FIFO stages,
//! depth-1 FIFOs, permanent deadlock, chronic timing violations), the
//! compiled engine must be **byte-identical** to the event kernel on
//! every observable: run outcome, end time, per-SB cycle counts, I/O
//! trace rows, edge times, clock/violation/drop statistics, per-channel
//! FIFO statistics and per-node token statistics.
//!
//! The case budget honours `PROPTEST_CASES` (CI runs a fixed reduced
//! budget; see `scripts/ci.sh`).

use proptest::prelude::*;
use st_sim::prelude::*;
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::{
    build_pingpong_backend, chain_spec, e1_spec, e1_spec_uncalibrated, pingpong_spec,
    producer_consumer_spec, MixerLogic,
};
use synchro_tokens::spec::NodeParams;

/// Builds the spec behind `backend` with a `MixerLogic` on every SB.
fn build(spec: &SystemSpec, trace_limit: usize, backend: Backend) -> AnySystem {
    let n = spec.sbs.len();
    let mut builder = SystemBuilder::new(spec.clone())
        .expect("generated spec must validate")
        .with_trace_limit(trace_limit);
    for i in 0..n {
        builder = builder.with_logic(SbId(i), MixerLogic::new(0x1000 * i as u64));
    }
    builder.build_backend(backend)
}

/// Runs both backends over `spec` and asserts every observable matches.
fn assert_equivalent(spec: &SystemSpec, trace_limit: usize, cycles: u64) {
    let mut ev = build(spec, trace_limit, Backend::Event);
    let mut cc = build(spec, trace_limit, Backend::Compiled);
    assert_eq!(
        cc.backend(),
        Backend::Compiled,
        "spec unexpectedly outside the compiled support envelope"
    );
    let max_time = SimDuration::us(3000);
    let a = ev.run_until_cycles(cycles, max_time).expect("event run");
    let b = cc.run_until_cycles(cycles, max_time).expect("compiled run");
    assert_eq!(a, b, "run outcome");
    assert_eq!(ev.now(), cc.now(), "end time");
    for i in 0..spec.sbs.len() {
        let sb = SbId(i);
        assert_eq!(ev.cycles(sb), cc.cycles(sb), "cycles of SB {i}");
        assert_eq!(
            ev.io_trace(sb).rows(),
            cc.io_trace(sb).rows(),
            "trace rows of SB {i}"
        );
        assert_eq!(
            ev.io_trace(sb).digest(),
            cc.io_trace(sb).digest(),
            "trace digest of SB {i}"
        );
        assert_eq!(ev.clock_stats(sb), cc.clock_stats(sb), "clock of SB {i}");
        assert_eq!(ev.edge_times(sb), cc.edge_times(sb), "edges of SB {i}");
        assert_eq!(
            ev.timing_violations(sb),
            cc.timing_violations(sb),
            "violations of SB {i}"
        );
        assert_eq!(
            ev.dropped_words(sb),
            cc.dropped_words(sb),
            "drops of SB {i}"
        );
        let m_ev: &MixerLogic = ev.logic(sb);
        let m_cc: &MixerLogic = cc.logic(sb);
        assert_eq!(m_ev, m_cc, "logic state of SB {i}");
    }
    for c in 0..spec.channels.len() {
        assert_eq!(
            ev.fifo_stats(ChannelId(c)),
            cc.fifo_stats(ChannelId(c)),
            "FIFO stats of channel {c}"
        );
    }
    for r in 0..spec.rings.len() {
        let ring = RingId(r);
        for i in 0..spec.sbs.len() {
            let (ne, nc) = (ev.node(SbId(i), ring), cc.node(SbId(i), ring));
            assert_eq!(ne.is_some(), nc.is_some(), "node presence {i}/{r}");
            if let (Some(ne), Some(nc)) = (ne, nc) {
                assert_eq!(ne.phase(), nc.phase(), "node phase {i}/{r}");
                assert_eq!(ne.passes(), nc.passes(), "node passes {i}/{r}");
                assert_eq!(ne.stops(), nc.stops(), "node stops {i}/{r}");
                assert_eq!(
                    ne.early_tokens(),
                    nc.early_tokens(),
                    "node early tokens {i}/{r}"
                );
            }
        }
    }
    assert_eq!(ev.stopped_sbs(), cc.stopped_sbs(), "parked clocks");
}

// --- deterministic adversarial schedules -------------------------------

#[test]
fn nominal_pair_is_equivalent() {
    assert_equivalent(&producer_consumer_spec(), 100, 150);
}

#[test]
fn unlimited_trace_is_equivalent() {
    assert_equivalent(&producer_consumer_spec(), 0, 120);
}

#[test]
fn e1_platform_is_equivalent() {
    assert_equivalent(&e1_spec(), 100, 120);
}

#[test]
fn pingpong_is_equivalent() {
    assert_equivalent(&pingpong_spec(), 100, 300);
}

/// The exact benchmark workload (`SequenceSource` → `PipeTransform` over
/// the bidirectional high-duty ping-pong), so the `system_sim` numbers are
/// backed by a byte-identity proof on the same build.
#[test]
fn pingpong_bench_workload_is_equivalent() {
    let mut ev = build_pingpong_backend(100, Backend::Event);
    let mut cc = build_pingpong_backend(100, Backend::Compiled);
    assert_eq!(cc.backend(), Backend::Compiled, "ping-pong must compile");
    let max_time = SimDuration::us(3000);
    let a = ev.run_until_cycles(300, max_time).expect("event run");
    let b = cc.run_until_cycles(300, max_time).expect("compiled run");
    assert_eq!(a, b, "run outcome");
    assert_eq!(ev.now(), cc.now(), "end time");
    for i in 0..2 {
        let sb = SbId(i);
        assert_eq!(ev.cycles(sb), cc.cycles(sb), "cycles of SB {i}");
        assert_eq!(ev.io_trace(sb).rows(), cc.io_trace(sb).rows(), "trace {i}");
        assert_eq!(ev.clock_stats(sb), cc.clock_stats(sb), "clock of SB {i}");
        assert_eq!(ev.edge_times(sb), cc.edge_times(sb), "edges of SB {i}");
    }
    for c in 0..2 {
        assert_eq!(
            ev.fifo_stats(ChannelId(c)),
            cc.fifo_stats(ChannelId(c)),
            "FIFO stats of channel {c}"
        );
    }
    let pt_ev: &PipeTransform = ev.logic(SbId(1));
    let pt_cc: &PipeTransform = cc.logic(SbId(1));
    assert_eq!(pt_ev.forwarded, pt_cc.forwarded, "forwarded words");
    assert_eq!(pt_ev.dropped, pt_cc.dropped, "dropped words");
    assert!(pt_ev.forwarded > 0, "ping-pong must actually move words");
}

#[test]
fn chain_of_four_is_equivalent() {
    assert_equivalent(&chain_spec(4), 64, 120);
}

#[test]
fn late_tokens_from_uncalibrated_recycles_are_equivalent() {
    // Recycle registers far below calibration make every token late:
    // clocks stop every rotation and restart on arrival — the
    // park/restart/edge-bundling path on a permanent loop.
    for recycle in [1, 3, 6] {
        assert_equivalent(&e1_spec_uncalibrated(recycle), 80, 100);
    }
}

#[test]
fn stretched_ring_wires_stop_clocks_equivalently() {
    // A 1 µs wire on a 10 ns clock: tokens arrive tens of cycles late,
    // with long parked windows and same-instant restart edges.
    let mut spec = producer_consumer_spec();
    spec.rings[0].delay_fwd = SimDuration::us(1);
    spec.rings[0].delay_back = SimDuration::us(1);
    assert_equivalent(&spec, 100, 150);
}

#[test]
fn zero_delay_ring_wires_are_equivalent() {
    // Token toggles landing in the same instant as the posedge that
    // launched them — the sharpest same-instant ordering case.
    let mut spec = producer_consumer_spec();
    spec.rings[0].delay_fwd = SimDuration::ZERO;
    spec.rings[0].delay_back = SimDuration::ZERO;
    assert_equivalent(&spec, 100, 150);
}

#[test]
fn zero_stage_delay_and_depth_one_fifos_are_equivalent() {
    let mut spec = producer_consumer_spec();
    spec.channels[0].stage_delay = SimDuration::ZERO;
    assert_equivalent(&spec, 100, 150);
    spec.channels[0].fifo_depth = 1;
    assert_equivalent(&spec, 100, 150);
}

#[test]
fn chronic_timing_violations_corrupt_identically() {
    // logic_delay longer than the period: every edge after the first
    // violates setup, so every transmitted word takes the corruption
    // XOR — on both engines, identically.
    let mut spec = producer_consumer_spec();
    spec.sbs[0].logic_delay = SimDuration::ns(25);
    assert_equivalent(&spec, 100, 120);
}

#[test]
fn minimal_supported_period_is_equivalent() {
    // Half-period exactly the bundled-data delay (1 ps): pushes and
    // acks from edge k land in the same instant as edge k+1.
    let mut spec = producer_consumer_spec();
    spec.sbs[0].period = SimDuration::ps(2);
    assert_equivalent(&spec, 80, 100);
}

#[test]
fn starved_triangle_deadlocks_equivalently() {
    assert_equivalent(&synchro_tokens::scenarios::starved_triangle_spec(), 64, 100);
}

// --- randomized differential sweep -------------------------------------

/// A deterministic build recipe for a random GALS system. Selector
/// fields index modulo the relevant pool, so every recipe is valid.
#[derive(Debug, Clone)]
struct SpecRecipe {
    /// Per SB: (period selector, logic-delay selector).
    sbs: Vec<(u8, u8)>,
    /// Per ring: (holder sel, peer-offset sel, hold, recycle,
    /// fwd/back delay sels packed low/high byte, initial-recycle
    /// override: 0 = calibrated default, else the raw preset).
    rings: Vec<(u8, u8, u8, u8, u16, u8)>,
    /// Per channel: (ring sel, reversed, depth, stage-delay sel).
    channels: Vec<(u8, bool, u8, u8)>,
}

const PERIODS_NS: [u64; 5] = [4, 6, 10, 12, 14];
const WIRE_DELAYS_NS: [u64; 6] = [0, 1, 5, 12, 30, 60];
const STAGE_DELAYS_PS: [u64; 4] = [0, 200, 1000, 3000];
/// Mostly in-spec, with a tail that forces violations (> max period).
const LOGIC_DELAYS_NS: [u64; 4] = [0, 0, 2, 20];

fn arb_recipe() -> impl Strategy<Value = SpecRecipe> {
    (
        proptest::collection::vec((any::<u8>(), any::<u8>()), 2..5),
        proptest::collection::vec(
            (
                any::<u8>(),
                any::<u8>(),
                1u8..6,
                1u8..20,
                any::<u16>(),
                0u8..20,
            ),
            1..5,
        ),
        proptest::collection::vec((any::<u8>(), any::<bool>(), 1u8..5, any::<u8>()), 1..7),
    )
        .prop_map(|(sbs, rings, channels)| SpecRecipe {
            sbs,
            rings,
            channels,
        })
}

fn build_spec(recipe: &SpecRecipe) -> SystemSpec {
    let mut s = SystemSpec::default();
    let n = recipe.sbs.len();
    for (i, &(p_sel, l_sel)) in recipe.sbs.iter().enumerate() {
        let period = SimDuration::ns(PERIODS_NS[p_sel as usize % PERIODS_NS.len()]);
        let sb = s.add_sb(&format!("sb{i}"), period);
        s.sbs[sb.0].logic_delay =
            SimDuration::ns(LOGIC_DELAYS_NS[l_sel as usize % LOGIC_DELAYS_NS.len()]);
    }
    let mut ring_ids = Vec::new();
    for &(h_sel, off_sel, hold, recycle, delay_sels, init) in &recipe.rings {
        let (fwd_sel, back_sel) = ((delay_sels & 0xFF) as u8, (delay_sels >> 8) as u8);
        let holder = SbId(h_sel as usize % n);
        let peer = SbId((holder.0 + 1 + off_sel as usize % (n - 1)) % n);
        let params = NodeParams::new(u32::from(hold), u32::from(recycle));
        let fwd = SimDuration::ns(WIRE_DELAYS_NS[fwd_sel as usize % WIRE_DELAYS_NS.len()]);
        let back = SimDuration::ns(WIRE_DELAYS_NS[back_sel as usize % WIRE_DELAYS_NS.len()]);
        let rid = s.add_ring_asymmetric(holder, peer, params, params, fwd, back);
        if init != 0 {
            s.rings[rid.0].peer_initial_recycle = Some(u32::from(init));
        }
        ring_ids.push(rid);
    }
    for &(r_sel, reversed, depth, f_sel) in &recipe.channels {
        let rid = ring_ids[r_sel as usize % ring_ids.len()];
        let ring = &s.rings[rid.0];
        let (from, to) = if reversed {
            (ring.peer, ring.holder)
        } else {
            (ring.holder, ring.peer)
        };
        let stage = SimDuration::ps(STAGE_DELAYS_PS[f_sel as usize % STAGE_DELAYS_PS.len()]);
        s.add_channel(from, to, rid, 16, depth as usize, stage);
    }
    s
}

/// The conformance clauses this suite is evidence for (see
/// `conformance/requirements.toml`): the compiled≡event byte identity
/// and, through it, the cycle-count purity of every SB's I/O trace.
const WITNESSED: &[&str] = &["ST-EQ-002", "ST-DET-001"];

/// Registers the suite's witness declaration; `st-conformance-lint`
/// counts it, and an unregistered ID fails right here.
#[test]
fn conformance_witnesses() {
    st_conformance::witnesses!(["ST-EQ-002", "ST-DET-001"]);
}

proptest! {
    #![proptest_config(st_testkit::case_budget(48, WITNESSED))]

    /// Compiled backend ≡ event backend on random systems: arbitrary
    /// topologies, plesiochronous periods, late/early tokens (random
    /// hold/recycle/initial-recycle), wire delays from zero to several
    /// cycles, and FIFO depths down to one.
    #[test]
    fn compiled_matches_event_backend_on_random_specs(recipe in arb_recipe()) {
        let spec = build_spec(&recipe);
        prop_assert!(spec.validate().is_ok(), "recipe built an invalid spec");
        assert_equivalent(&spec, 64, 120);
    }
}
