//! Edge-case coverage for `System::run_until_cycles` (and its compiled
//! twin via [`AnySystem`]): zero-cycle requests, targets that are
//! already satisfied, time budgets that expire, and stopped-clock
//! systems that can never reach the target — which must report
//! deadlock, not hang.

use st_sim::prelude::*;
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::{build_e1, producer_consumer_spec, starved_triangle_spec};

fn build_pair(backend: Backend) -> AnySystem {
    SystemBuilder::new(producer_consumer_spec())
        .expect("valid spec")
        .with_logic(SbId(0), SequenceSource::new(7, 3))
        .with_logic(SbId(1), SinkCollect::new())
        .build_backend(backend)
}

const BACKENDS: [Backend; 2] = [Backend::Event, Backend::Compiled];

#[test]
fn zero_cycle_request_returns_immediately() {
    for backend in BACKENDS {
        let mut sys = build_pair(backend);
        let out = sys.run_until_cycles(0, SimDuration::us(100)).unwrap();
        assert_eq!(out, RunOutcome::Reached, "{backend:?}");
        assert_eq!(sys.now(), SimTime::ZERO, "{backend:?}: no time may pass");
        assert_eq!(sys.cycles(SbId(0)), 0, "{backend:?}");
    }
}

#[test]
fn already_reached_target_does_not_advance_time() {
    for backend in BACKENDS {
        let mut sys = build_pair(backend);
        let out = sys.run_until_cycles(50, SimDuration::us(100)).unwrap();
        assert_eq!(out, RunOutcome::Reached, "{backend:?}");
        let t = sys.now();
        let cycles: Vec<u64> = (0..2).map(|i| sys.cycles(SbId(i))).collect();
        // Asking again for an already-met (or smaller) target must be a
        // no-op: same outcome, no simulated time, no extra cycles.
        for target in [50, 10, 1] {
            let again = sys.run_until_cycles(target, SimDuration::us(100)).unwrap();
            assert_eq!(again, RunOutcome::Reached, "{backend:?} target {target}");
            assert_eq!(sys.now(), t, "{backend:?} target {target}");
            for (i, &before) in cycles.iter().enumerate() {
                assert_eq!(sys.cycles(SbId(i)), before, "{backend:?}");
            }
        }
    }
}

#[test]
fn expired_time_budget_reports_timeout() {
    for backend in BACKENDS {
        let mut sys = build_pair(backend);
        // 10 ns covers zero full cycles of a 10/12 ns pair, let alone
        // one thousand.
        let out = sys.run_until_cycles(1000, SimDuration::ns(10)).unwrap();
        assert_eq!(out, RunOutcome::TimedOut, "{backend:?}");
        // A zero budget must also return (immediately), not spin.
        let out = sys.run_until_cycles(1000, SimDuration::ZERO).unwrap();
        assert_eq!(out, RunOutcome::TimedOut, "{backend:?}");
    }
}

#[test]
fn stopped_clocks_report_deadlock_rather_than_hang() {
    // Every clock in the starved triangle parks within its first cycles
    // with all tokens frozen inside stopped holders; the event queue
    // drains, and the runner must detect that and name the stuck SBs
    // instead of timing out (or worse, spinning forever on a target no
    // SB can reach).
    for backend in BACKENDS {
        let mut sys: AnySystem = match backend {
            Backend::Event => build_e1(starved_triangle_spec(), 0, 100).into(),
            Backend::Compiled => {
                let sys = synchro_tokens::scenarios::build_e1_backend(
                    starved_triangle_spec(),
                    0,
                    100,
                    Backend::Compiled,
                );
                assert_eq!(sys.backend(), Backend::Compiled);
                sys
            }
        };
        let out = sys.run_until_cycles(100, SimDuration::us(3000)).unwrap();
        let RunOutcome::Deadlock { stopped } = out else {
            panic!("{backend:?}: expected deadlock, got {out:?}");
        };
        assert_eq!(
            stopped,
            vec![SbId(0), SbId(1), SbId(2)],
            "{backend:?}: every SB's clock must be parked"
        );
        assert_eq!(sys.stopped_sbs(), stopped, "{backend:?}");
        assert!(
            sys.cycles(SbId(0)) < 100,
            "{backend:?}: the target must be unreachable"
        );
    }
}

#[test]
fn deadlock_is_byte_identical_across_backends() {
    // The adversarial schedule (clock stops with tokens in flight, then
    // permanent starvation) is exactly where the compiled engine's
    // park/restart logic could drift; lock every observable.
    let mut ev: AnySystem = build_e1(starved_triangle_spec(), 0, 100).into();
    let mut cc = synchro_tokens::scenarios::build_e1_backend(
        starved_triangle_spec(),
        0,
        100,
        Backend::Compiled,
    );
    let a = ev.run_until_cycles(100, SimDuration::us(3000)).unwrap();
    let b = cc.run_until_cycles(100, SimDuration::us(3000)).unwrap();
    assert_eq!(a, b);
    assert_eq!(ev.now(), cc.now());
    for i in 0..3 {
        let sb = SbId(i);
        assert_eq!(ev.cycles(sb), cc.cycles(sb));
        assert_eq!(ev.io_trace(sb).rows(), cc.io_trace(sb).rows());
        assert_eq!(ev.clock_stats(sb), cc.clock_stats(sb));
        assert_eq!(ev.edge_times(sb), cc.edge_times(sb));
    }
    for c in 0..3 {
        assert_eq!(ev.fifo_stats(ChannelId(c)), cc.fifo_stats(ChannelId(c)));
    }
}
