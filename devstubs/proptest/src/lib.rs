//! Offline dev stub for `proptest`: the same macro/strategy API surface
//! this workspace uses, backed by a real random-case runner (no
//! shrinking). Failing cases panic with the generated inputs printed,
//! so property tests still *test* when developed offline.
//! See devstubs/README.md.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic splitmix64 stream for case generation.
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    pub fn new(seed: u64) -> Self {
        CaseRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sample range");
        self.next_u64() % n
    }
}

/// A value generator. `sample` is this stub's notion of `new_tree` +
/// `current` — no shrinking.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut CaseRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { source: self, f }
    }
}

pub mod strategy {
    use super::{CaseRng, Strategy};

    /// `Strategy::prop_map` output.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut CaseRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// `any::<T>()` — uniform over the whole type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical `any` strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut CaseRng) -> Self;
}

#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut CaseRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut CaseRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut CaseRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut CaseRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

pub mod collection {
    use super::{CaseRng, Strategy};
    use std::ops::Range;

    /// Accepted sizes for [`vec`]: a fixed length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut CaseRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{CaseRng, Strategy};

    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut CaseRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod test_runner {
    use super::{CaseRng, Strategy};
    use std::fmt::Debug;

    /// Runner configuration (`cases` is the only knob this workspace
    /// uses; the rest exist for struct-update compatibility).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            // Like real proptest, `PROPTEST_CASES` overrides the default
            // case count (CI pins a reduced budget; local soak runs can
            // raise it) — but not an explicit `cases` in the test's own
            // `ProptestConfig { cases: N, .. }`.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .filter(|n| *n > 0)
                .unwrap_or(256);
            Config {
                cases,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Runs `cases` random samples of `strategy` through `body`,
    /// panicking (with the inputs) on the first failure.
    pub fn run<S>(
        name: &str,
        config: &Config,
        strategy: &S,
        body: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) where
        S: Strategy,
        S::Value: Debug + Clone,
    {
        let mut seed = 0xC0FF_EE00u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(31).wrapping_add(u64::from(b));
        }
        let mut rng = CaseRng::new(seed);
        for case in 0..config.cases {
            let value = strategy.sample(&mut rng);
            if let Err(TestCaseError(msg)) = body(value.clone()) {
                panic!("property '{name}' failed at case {case}: {msg}\ninputs: {value:#?}");
            }
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};

    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategy = ($($strat,)+);
                $crate::test_runner::run(
                    stringify!($name),
                    &config,
                    &strategy,
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Unused in this workspace, present for `use proptest::prelude::*`
/// glob compatibility.
pub fn _stub_marker() -> impl Debug {
    0u8
}
