//! Offline dev stub for `serde`: trait names only, with inert derives.
//! See devstubs/README.md.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker-only stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker-only stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
