//! Offline dev stub for `serde_derive`: the derives expand to nothing,
//! and `#[serde(...)]` helper attributes become inert. Nothing in this
//! workspace serializes at runtime — the derives only need to parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
