//! Offline dev stub for `rand` — deterministic splitmix64 behind the
//! subset of the 0.8 API this workspace uses. See devstubs/README.md.

use std::ops::Range;

/// Core RNG: a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from a uniform stream (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types usable with `Rng::gen_range`.
pub trait UniformInt: Copy + PartialOrd {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128) - (range.start as u128);
                range.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::uniform(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 stand-in for rand's `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
