//! Offline dev stub for `criterion`: really measures (monotonic clock,
//! warmup + sampled batches, median ns/iter) and writes
//! `target/criterion/<id>/new/estimates.json` in the upstream layout so
//! `scripts/bench_snapshot.sh` parses either implementation's output.
//! See devstubs/README.md.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (reported as a rate next to the median).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-iteration timer handed to `bench_function` closures.
pub struct Bencher {
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`: ~0.5 s warmup, then 15 sampled batches sized to
    /// ~50 ms each; records the median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_end = Instant::now() + Duration::from_millis(500);
        let mut warm_iters = 0u64;
        let mut warm_spent = Duration::ZERO;
        while Instant::now() < warmup_end {
            let t0 = Instant::now();
            black_box(routine());
            warm_spent += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_spent.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.05 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = (0..15)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t0.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }
}

fn target_criterion_dir() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let target = exe.ancestors().find(|p| p.ends_with("target"))?;
    Some(target.join("criterion"))
}

fn record(id: &str, median_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.2} M elem/s, {:.1} ns/elem)",
                n as f64 / median_ns * 1e3,
                median_ns / n as f64
            )
        }
        None => String::new(),
    };
    println!("{id:<40} median {median_ns:>12.1} ns/iter{rate}");
    if let Some(dir) = target_criterion_dir() {
        let out = dir.join(id).join("new");
        if fs::create_dir_all(&out).is_ok() {
            let json = format!(
                "{{\"median\":{{\"point_estimate\":{median_ns}}},\"mean\":{{\"point_estimate\":{median_ns}}}}}"
            );
            let _ = fs::write(out.join("estimates.json"), json);
            // Upstream criterion also persists the throughput
            // annotation (benchmark.json); snapshots need it to report
            // per-element costs — a 64-lane iteration is 64 configs,
            // and comparing raw ns/iter across lane counts is exactly
            // the BENCH_5 `lanes64_node` ≈ `compiled_node` confusion.
            let throughput_json = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("{{\"throughput\":{{\"Elements\":{n}}}}}")
                }
                Some(Throughput::Bytes(n)) => format!("{{\"throughput\":{{\"Bytes\":{n}}}}}"),
                None => "{\"throughput\":null}".to_owned(),
            };
            let _ = fs::write(out.join("benchmark.json"), throughput_json);
        }
    }
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { median_ns: 0.0 };
        f(&mut b);
        record(id, b.median_ns, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A named group; benches land under `<group>/<id>` like upstream.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { median_ns: 0.0 };
        f(&mut b);
        record(&format!("{}/{id}", self.name), b.median_ns, self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
