//! Cross-crate integration: the E1 determinism property end to end.

use synchro_tokens_repro::prelude::*;
use synchro_tokens_repro::synchro_tokens::determinism::{
    run_campaign, CampaignConfig, DelayConfig,
};
use synchro_tokens_repro::synchro_tokens::rules::{check_determinism_rules, ScaleRange};
use synchro_tokens_repro::synchro_tokens::scenarios::{
    build_e1, build_e1_bypass, e1_spec, MixerLogic,
};

/// Registers the suite's witness declaration for the lint: the E1
/// platform's traces are a pure function of local cycle count.
#[test]
fn conformance_witnesses() {
    st_conformance::witnesses!(["ST-DET-001"]);
}

#[test]
fn e1_platform_obeys_every_design_rule_across_the_paper_sweep() {
    let violations = check_determinism_rules(&e1_spec(), ScaleRange::PAPER_SWEEP);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn campaign_of_eighty_corners_matches_everywhere() {
    let spec = e1_spec();
    let cfg = CampaignConfig {
        runs: 80,
        compare_cycles: 100,
        ..CampaignConfig::default()
    };
    let result = run_campaign(&spec, &cfg, &|s, seed| build_e1(s, seed, 100));
    assert_eq!(result.total, 80);
    assert!(result.all_match(), "{result}");
    assert_eq!(result.match_rate(), 1.0);
}

#[test]
fn bypass_campaign_observably_diverges() {
    let spec = e1_spec();
    let cfg = CampaignConfig {
        runs: 60,
        compare_cycles: 100,
        bypass: true,
        ..CampaignConfig::default()
    };
    let result = run_campaign(&spec, &cfg, &|s, seed| build_e1_bypass(s, seed, 100));
    assert!(
        !result.mismatches.is_empty(),
        "the baseline must be nondeterministic: {result}"
    );
    // Divergences carry actionable detail: a first divergent cycle.
    let m = &result.mismatches[0];
    assert!(m.divergences.iter().any(Option::is_some));
}

#[test]
fn identical_builds_are_bit_identical() {
    // Same spec + seed -> byte-for-byte equal traces, including final
    // logic state (the repeatability every ATE flow relies on).
    let run = || {
        let mut sys = build_e1(e1_spec(), 42, 100);
        sys.run_until_cycles(150, SimDuration::us(3000)).unwrap();
        let digests: Vec<u64> = (0..3).map(|i| sys.io_trace(SbId(i)).digest()).collect();
        let states: Vec<(u64, u64)> = (0..3)
            .map(|i| sys.logic::<MixerLogic>(SbId(i)).state())
            .collect();
        (digests, states)
    };
    assert_eq!(run(), run());
}

#[test]
fn worst_corner_all_delays_at_extremes_still_matches() {
    let spec = e1_spec();
    let nominal = {
        let mut sys = build_e1(spec.clone(), 0, 100);
        sys.run_until_cycles(100, SimDuration::us(3000)).unwrap();
        (0..3)
            .map(|i| sys.io_trace(SbId(i)).clone())
            .collect::<Vec<_>>()
    };
    for pct in [50u64, 200] {
        let mut cfg = DelayConfig::nominal(&spec);
        for k in 0..cfg.knobs() {
            cfg.set_knob(k, pct);
        }
        let mut sys = build_e1(cfg.apply(&spec), 0, 100);
        let out = sys.run_until_cycles(100, SimDuration::us(6000)).unwrap();
        assert_eq!(out, RunOutcome::Reached, "corner {pct}%");
        for (i, reference) in nominal.iter().enumerate() {
            assert!(
                sys.io_trace(SbId(i)).matches_for(reference, 100),
                "sb{i} diverged at the all-{pct}% corner"
            );
        }
    }
}

#[test]
fn data_integrity_holds_at_every_corner() {
    // Beyond sequence equality: no FIFO ever overruns or underruns, and
    // every SB keeps exchanging data.
    let spec = e1_spec();
    for pct in [50u64, 75, 150, 200] {
        let mut cfg = DelayConfig::nominal(&spec);
        cfg.set_knob(0, pct); // alpha's clock
        cfg.set_knob(5, 300 - pct); // one ring wire the other way
        let mut sys = build_e1(cfg.apply(&spec), 0, 100);
        sys.run_until_cycles(150, SimDuration::us(6000)).unwrap();
        for c in 0..6 {
            let (pushes, pops, over, under) = sys.fifo_stats(ChannelId(c));
            assert_eq!(over, 0, "ch{c} overran at {pct}%");
            assert_eq!(under, 0, "ch{c} underran at {pct}%");
            assert!(pushes >= pops);
            assert!(pops > 0, "ch{c} starved at {pct}%");
        }
    }
}
