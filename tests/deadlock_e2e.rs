//! Cross-crate integration: deadlock behaviour and the prevention rule
//! (E6), plus Figure 2 regeneration (E3) smoke coverage.

use st_bench::fig2::reproduce_fig2;
use synchro_tokens_repro::prelude::*;
use synchro_tokens_repro::synchro_tokens::deadlock::{analyze, apply_prevention_rule};
use synchro_tokens_repro::synchro_tokens::scenarios::{build_e1, starved_triangle_spec};

#[test]
fn starved_triangle_deadlocks_identically_every_time() {
    let observe = || {
        let mut sys = build_e1(starved_triangle_spec(), 0, 10);
        let out = sys.run_until_cycles(100, SimDuration::us(200)).unwrap();
        let cycles: Vec<u64> = (0..3).map(|i| sys.cycles(SbId(i))).collect();
        (format!("{out:?}"), cycles, sys.now())
    };
    let a = observe();
    let b = observe();
    assert_eq!(a, b, "deadlock must be deterministic");
    assert!(a.0.contains("Deadlock"));
}

#[test]
fn analysis_predicts_simulation() {
    // Static verdict "deadlock possible" + tight recycles => simulation
    // deadlocks; rule-fixed spec => simulation completes.
    let spec = starved_triangle_spec();
    let verdict = analyze(&spec, ScaleRange::NOMINAL);
    assert!(!verdict.deadlock_free);

    let fixed = apply_prevention_rule(spec, ScaleRange::NOMINAL);
    assert!(analyze(&fixed, ScaleRange::NOMINAL).deadlock_free);
    let mut sys = build_e1(fixed, 0, 10);
    let out = sys.run_until_cycles(200, SimDuration::us(2000)).unwrap();
    assert_eq!(out, RunOutcome::Reached);
}

#[test]
fn prevention_rule_is_idempotent() {
    let fixed = apply_prevention_rule(starved_triangle_spec(), ScaleRange::NOMINAL);
    let fixed_again = apply_prevention_rule(fixed.clone(), ScaleRange::NOMINAL);
    assert_eq!(fixed, fixed_again);
}

#[test]
fn fig2_reproduction_shows_the_full_event_sequence() {
    let out = reproduce_fig2();
    assert!(!out.stop_events.is_empty());
    assert!(out.ascii.contains("node_a.clken"));
    assert!(out.vcd.contains("$enddefinitions"));
    // Periodic steady state (deterministic stop durations).
    let durations: Vec<u64> = out
        .stop_events
        .iter()
        .map(|(d, u)| u.since(*d).as_fs())
        .collect();
    assert!(durations[1..].windows(2).all(|w| w[0] == w[1]));
}
