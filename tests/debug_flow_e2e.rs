//! Cross-crate integration: the §4.2 debug features over a live system.

use synchro_tokens_repro::prelude::*;
use synchro_tokens_repro::st_testkit::{shmoo, Instruction, TckMode, TestAccess};
use synchro_tokens_repro::synchro_tokens::scenarios::{build_e1, e1_spec, MixerLogic};

#[test]
fn breakpoint_scan_step_resume_round_trip() {
    let mut sys = build_e1(e1_spec(), 0, 60);
    sys.run_until_cycles(60, SimDuration::us(2000)).unwrap();
    let mut tester = TestAccess::new(SbId(0), 0xFEED_0001);
    assert_eq!(tester.read_idcode(), 0xFEED_0001);

    // Break.
    let b = tester.breakpoint(&mut sys, SimDuration::us(100)).unwrap();
    assert_eq!(b.stopped.len(), 2, "beta and gamma must stop");

    // Scan out, mutate, scan back in.
    let (ctr, acc) = sys.logic::<MixerLogic>(SbId(2)).state();
    assert_eq!(tester.scan_state_word(ctr), ctr);
    sys.logic_mut::<MixerLogic>(SbId(2))
        .set_state(ctr ^ 0xFF, acc);
    assert_eq!(sys.logic::<MixerLogic>(SbId(2)).state().0, ctr ^ 0xFF);
    sys.logic_mut::<MixerLogic>(SbId(2)).set_state(ctr, acc);

    // Step twice, then resume to full speed.
    let s1 = tester
        .single_step(&mut sys, 2, SimDuration::us(200))
        .unwrap();
    let s2 = tester
        .single_step(&mut sys, 2, SimDuration::us(200))
        .unwrap();
    assert!(s2.cycles[1] > s1.cycles[1]);
    tester.resume(&mut sys);
    let c_before = sys.cycles(SbId(1));
    sys.run_for(SimDuration::us(10)).unwrap();
    assert!(
        sys.cycles(SbId(1)) > c_before + 100,
        "resume restores speed"
    );
}

#[test]
fn interlocked_data_exchange_is_deterministic_but_independent_is_not_guaranteed() {
    // In interlocked mode, repeated breakpoint+step sessions land on the
    // exact same local cycles.
    let session = || {
        let mut sys = build_e1(e1_spec(), 0, 60);
        sys.run_until_cycles(60, SimDuration::us(2000)).unwrap();
        let mut tester = TestAccess::new(SbId(0), 1);
        let b = tester.breakpoint(&mut sys, SimDuration::us(100)).unwrap();
        let s = tester
            .single_step(&mut sys, 3, SimDuration::us(200))
            .unwrap();
        (b.cycles, s.cycles)
    };
    assert_eq!(session(), session());
}

#[test]
fn tap_private_instructions_retune_the_wrapper() {
    let mut sys = build_e1(e1_spec(), 0, 60);
    let mut tester = TestAccess::new(SbId(0), 1);
    let old = sys.node(SbId(0), RingId(0)).unwrap().params();
    let new = NodeParams::new(old.hold + 2, old.recycle + 4);
    tester.write_node_params(&mut sys, SbId(0), RingId(0), new);
    assert_eq!(sys.node(SbId(0), RingId(0)).unwrap().params(), new);
    let log = tester.tap().update_log().to_vec();
    assert!(log.contains(&Instruction::HoldReg));
    assert!(log.contains(&Instruction::RecycleReg));
}

#[test]
fn shmoo_brackets_an_injected_critical_path_exactly() {
    let mut spec = e1_spec();
    spec.sbs[0].logic_delay = SimDuration::ns(7);
    let periods: Vec<SimDuration> = (5..=11).map(SimDuration::ns).collect();
    let r = shmoo(&spec, SbId(0), &periods, 50, &|s, seed| {
        build_e1(s, seed, 50)
    });
    assert_eq!(r.min_passing_period(), Some(SimDuration::ns(7)));
    assert_eq!(r.max_failing_period(), Some(SimDuration::ns(6)));
}

#[test]
fn independent_mode_keeps_mission_mode_running() {
    let mut sys = build_e1(e1_spec(), 0, 60);
    sys.run_until_cycles(60, SimDuration::us(2000)).unwrap();
    let mut tester = TestAccess::new(SbId(0), 1);
    tester.set_mode(TckMode::Independent);
    let r = tester.breakpoint(&mut sys, SimDuration::us(20)).unwrap();
    assert!(r.stopped.is_empty());
    let before: Vec<u64> = (0..3).map(|i| sys.cycles(SbId(i))).collect();
    sys.run_for(SimDuration::us(5)).unwrap();
    for (i, b) in before.iter().enumerate() {
        assert!(sys.cycles(SbId(i)) > *b, "sb{i} froze in independent mode");
    }
}
