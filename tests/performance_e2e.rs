//! Cross-crate integration: the §5 performance comparison (E4/E5).

use st_bench::perf::{measure_stari, measure_synchro, sweep_hold};
use st_bench::tradeoff::tradeoff_row;
use synchro_tokens_repro::prelude::*;

#[test]
fn paper_shape_stari_wins_throughput_by_h_plus_r_over_h() {
    let t = SimDuration::ns(10);
    let f = SimDuration::ns(1);
    for h in [2u32, 4, 8] {
        let syn = measure_synchro(t, f, h, 100);
        let stari = measure_stari(t, f, h, 300);
        assert!(stari.throughput > 0.9, "H={h}: stari {}", stari.throughput);
        let factor = stari.throughput / syn.throughput;
        let model = f64::from(syn.hold + syn.recycle) / f64::from(syn.hold);
        let rel = (factor - model).abs() / model;
        assert!(
            rel < 0.3,
            "H={h}: factor {factor:.2} vs model {model:.2} ({rel:.2})"
        );
    }
}

#[test]
fn latencies_scale_linearly_with_h_for_both_disciplines() {
    let t = SimDuration::ns(10);
    let f = SimDuration::ns(1);
    let rows = sweep_hold(t, f, &[2, 4, 8], 100);
    // Doubling H should roughly double latency (within 2.6x and above
    // 1.4x — models are affine with a constant term).
    for w in rows.windows(2) {
        let (s0, t0) = &w[0];
        let (s1, t1) = &w[1];
        let syn_ratio = s1.latency.as_fs() as f64 / s0.latency.as_fs() as f64;
        let stari_ratio = t1.latency.as_fs() as f64 / t0.latency.as_fs() as f64;
        assert!((1.2..2.8).contains(&syn_ratio), "synchro ratio {syn_ratio}");
        assert!(
            (1.2..2.8).contains(&stari_ratio),
            "stari ratio {stari_ratio}"
        );
    }
}

#[test]
fn synchro_latency_model_brackets_measurement() {
    // Eq. 2 counts the average wait for the transmit window, which the
    // transmit-to-delivery measurement excludes, so the model is an
    // upper bound of the same order.
    let p = measure_synchro(SimDuration::ns(10), SimDuration::ns(1), 4, 120);
    assert!(p.latency <= p.model_latency);
    assert!(
        p.latency.as_fs() * 4 >= p.model_latency.as_fs(),
        "same order"
    );
}

#[test]
fn width_compensation_recovers_stari_parity() {
    for h in [2u32, 4, 8] {
        let syn = measure_synchro(SimDuration::ns(10), SimDuration::ns(1), h, 80);
        let row = tradeoff_row(syn.hold, syn.recycle, 16);
        assert!(
            row.widened_throughput >= 0.999,
            "H={h}: widened {}",
            row.widened_throughput
        );
        assert!(row.widened_area > row.base_area);
    }
}

#[test]
fn perf_points_are_reproducible() {
    let a = measure_synchro(SimDuration::ns(10), SimDuration::ns(1), 4, 100);
    let b = measure_synchro(SimDuration::ns(10), SimDuration::ns(1), 4, 100);
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.latency, b.latency);
}
