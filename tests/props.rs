//! Cross-crate property-based tests: the determinism theorem under
//! randomized delay assignments, FIFO conservation, and token-ring
//! invariants, exercised through the full stack.

use proptest::prelude::*;
use synchro_tokens_repro::prelude::*;
use synchro_tokens_repro::synchro_tokens::determinism::DelayConfig;
use synchro_tokens_repro::synchro_tokens::scenarios::{build_e1, e1_spec};

/// A delay percentage from the paper's sweep set.
fn paper_pct() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![50u64, 75, 100, 150, 200])
}

/// A full delay configuration for the E1 platform.
fn e1_config() -> impl Strategy<Value = DelayConfig> {
    let spec = e1_spec();
    let knobs = DelayConfig::nominal(&spec).knobs();
    proptest::collection::vec(paper_pct(), knobs).prop_map(move |pcts| {
        let mut c = DelayConfig::nominal(&e1_spec());
        for (k, p) in pcts.into_iter().enumerate() {
            c.set_knob(k, p);
        }
        c
    })
}

fn nominal_digests() -> &'static Vec<u64> {
    use std::sync::OnceLock;
    static CACHE: OnceLock<Vec<u64>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut sys = build_e1(e1_spec(), 0, 60);
        sys.run_until_cycles(60, SimDuration::us(3000)).unwrap();
        (0..3).map(|i| sys.io_trace(SbId(i)).digest()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full-system simulation
        ..ProptestConfig::default()
    })]

    /// The headline theorem: any delay assignment from the paper's sweep
    /// leaves every SB's I/O sequence identical to nominal.
    #[test]
    fn io_sequences_invariant_under_random_delay_assignments(config in e1_config()) {
        let spec = config.apply(&e1_spec());
        let mut sys = build_e1(spec, 0, 60);
        let out = sys.run_until_cycles(60, SimDuration::us(6000)).unwrap();
        prop_assert_eq!(out, RunOutcome::Reached);
        let nominal = nominal_digests();
        for (i, reference) in nominal.iter().enumerate() {
            prop_assert_eq!(
                sys.io_trace(SbId(i)).digest(),
                *reference,
                "sb{} diverged under {:?}", i, config
            );
        }
    }

    /// Conservation: no FIFO ever invents or loses words, at any corner.
    #[test]
    fn fifo_conservation_under_random_delays(config in e1_config()) {
        let spec = config.apply(&e1_spec());
        let mut sys = build_e1(spec, 0, 30);
        sys.run_until_cycles(60, SimDuration::us(6000)).unwrap();
        for c in 0..6 {
            let (pushes, pops, over, under) = sys.fifo_stats(ChannelId(c));
            prop_assert_eq!(over, 0);
            prop_assert_eq!(under, 0);
            prop_assert!(pushes >= pops);
            prop_assert!(pushes - pops <= 4, "more words in flight than stages");
        }
    }

    /// Token conservation: passes alternate, so the two ends of a ring
    /// never differ by more than one pass.
    #[test]
    fn token_alternation_under_random_delays(config in e1_config()) {
        let spec = config.apply(&e1_spec());
        let mut sys = build_e1(spec.clone(), 0, 10);
        sys.run_until_cycles(60, SimDuration::us(6000)).unwrap();
        for (r, ring) in spec.rings.iter().enumerate() {
            let a = sys.node(ring.holder, RingId(r)).unwrap().passes();
            let b = sys.node(ring.peer, RingId(r)).unwrap().passes();
            prop_assert!(a.abs_diff(b) <= 1, "ring{}: {} vs {}", r, a, b);
        }
    }
}
